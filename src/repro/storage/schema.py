"""Relation schemas: columns, keys, and row validation."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CatalogError, IntegrityError
from repro.storage.types import DataType

#: A stored row is an immutable tuple of values, positionally matching the
#: schema's column order.
Row = tuple[object, ...]


@dataclass(frozen=True)
class Column:
    """One column of a relation."""

    name: str
    datatype: DataType
    nullable: bool = True
    default: object = None

    def validate(self, value: object) -> object:
        """Type-check/coerce one value for this column."""
        if value is None:
            if not self.nullable:
                raise IntegrityError(f"column {self.name!r} is NOT NULL")
            return None
        return self.datatype.validate(value)


@dataclass
class TableSchema:
    """Schema of a stored or derived relation.

    Column names are case-insensitive: lookups go through a lowered-name
    map, but the original spelling is preserved for display.
    """

    name: str
    columns: list[Column]
    primary_key: list[str] = field(default_factory=list)
    _index_by_name: dict[str, int] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self._rebuild_lookup()
        for key_column in self.primary_key:
            self.column_index(key_column)  # raises if missing

    def _rebuild_lookup(self) -> None:
        self._index_by_name = {}
        for position, column in enumerate(self.columns):
            lowered = column.name.lower()
            if lowered in self._index_by_name:
                raise CatalogError(
                    f"duplicate column {column.name!r} in table {self.name!r}"
                )
            self._index_by_name[lowered] = position

    # -- lookups --------------------------------------------------------

    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def has_column(self, name: str) -> bool:
        return name.lower() in self._index_by_name

    def column_index(self, name: str) -> int:
        """Position of a column by (case-insensitive) name."""
        try:
            return self._index_by_name[name.lower()]
        except KeyError:
            raise CatalogError(
                f"no column {name!r} in table {self.name!r} "
                f"(columns: {', '.join(self.column_names)})"
            ) from None

    def column(self, name: str) -> Column:
        return self.columns[self.column_index(name)]

    @property
    def primary_key_positions(self) -> list[int]:
        return [self.column_index(name) for name in self.primary_key]

    # -- row handling -----------------------------------------------------

    def validate_row(self, values: list[object] | Row) -> Row:
        """Validate and coerce a full positional row."""
        if len(values) != len(self.columns):
            raise IntegrityError(
                f"table {self.name!r} expects {len(self.columns)} values, "
                f"got {len(values)}"
            )
        return tuple(
            column.validate(value) for column, value in zip(self.columns, values)
        )

    def row_from_mapping(self, mapping: dict[str, object]) -> Row:
        """Build a row from a column→value mapping, applying defaults."""
        provided = {key.lower(): value for key, value in mapping.items()}
        unknown = set(provided) - set(self._index_by_name)
        if unknown:
            raise CatalogError(
                f"unknown column(s) {sorted(unknown)} for table {self.name!r}"
            )
        values = [
            provided.get(column.name.lower(), column.default)
            for column in self.columns
        ]
        return self.validate_row(values)

    def key_of(self, row: Row) -> Row | None:
        """Extract the primary-key tuple of a row, or None if no PK."""
        if not self.primary_key:
            return None
        positions = self.primary_key_positions
        return tuple(row[p] for p in positions)

    def rename(self, new_name: str) -> "TableSchema":
        """A copy of this schema under a different relation name."""
        return TableSchema(new_name, list(self.columns), list(self.primary_key))
