"""E5 — Timeout-based global deadlock resolution: the timeout-period trade-off.

Claim validated (paper §2): "a timeout period is associated with each local
query ... if the result does not return within the timeout period, the
entire global transaction is assumed to be involved in a global deadlock and
is aborted."  The sweep quantifies the trade-off the authors bought into:

- short timeouts  → quick deadlock resolution but many *false* aborts
  (transactions that were merely waiting, not deadlocked)
- long timeouts   → few false aborts but real deadlocks stall throughput

The wait-for-graph oracle (impossible in a real FDBS without breaking local
autonomy) classifies each timeout abort as true or false.
"""

from conftest import emit

from repro.workloads import build_bank_sites, run_contention, total_balance

TIMEOUTS_S = [0.05, 0.1, 0.2, 0.4]


def run_once(timeout_s: float, seed: int = 51):
    system = build_bank_sites(3, 4)
    result = run_contention(
        system,
        3,
        4,
        workers=4,
        transactions_per_worker=8,
        hotspot_accounts=1,
        hotspot_probability=0.9,
        timeout_s=timeout_s,
        think_time_s=0.01,
        seed=seed,
    )
    assert abs(total_balance(system) - 12000.0) < 1e-6  # invariant
    return result


def test_e5_timeout_sweep(benchmark):
    rows = []
    for timeout_s in TIMEOUTS_S:
        result = run_once(timeout_s)
        rows.append(
            (
                timeout_s,
                result.committed,
                result.timeout_aborts,
                result.false_timeout_aborts,
                round(result.false_abort_rate, 2),
                round(result.throughput, 1),
                result.oracle_cycles_seen,
            )
        )
    emit(
        "E5",
        "timeout period vs commits / timeout aborts / false aborts "
        "(hotspot transfer mix, 4 workers x 8 txns, 3 sites)",
        [
            "timeout_s",
            "commits",
            "t_aborts",
            "false",
            "false_rate",
            "commit/s",
            "cycles",
        ],
        rows,
    )
    # Shape (soft, thread scheduling is noisy): the shortest timeout must
    # not produce dramatically fewer timeout aborts than the longest.
    timeout_aborts = [row[2] for row in rows]
    assert timeout_aborts[0] + 8 >= timeout_aborts[-1]
    # Every attempted transaction was accounted for.
    total = rows[0][1] + rows[0][2]
    assert total <= 32

    benchmark.pedantic(run_once, args=(0.1,), rounds=2, iterations=1)


def test_e5b_policy_comparison(benchmark):
    """Timeout policy vs. active WFG detection (the testbed comparison the
    paper's §3 proposes: 'validating and comparing solutions to various FDBS
    problems such as ... transaction management')."""

    def run_policy(policy: str):
        system = build_bank_sites(3, 4)
        result = run_contention(
            system,
            3,
            4,
            workers=4,
            transactions_per_worker=8,
            hotspot_accounts=1,
            hotspot_probability=0.9,
            timeout_s=0.15,
            think_time_s=0.01,
            policy=policy,
            seed=55,
        )
        assert abs(total_balance(system) - 12000.0) < 1e-6
        return result

    rows = []
    for policy in ("timeout", "wfg"):
        result = run_policy(policy)
        aborts = (
            result.timeout_aborts
            + result.deadlock_aborts
            + result.other_aborts
        )
        rows.append(
            (
                policy,
                result.committed,
                aborts,
                result.timeout_aborts,
                result.deadlock_aborts,
                round(result.false_abort_rate, 2),
                round(result.throughput, 1),
            )
        )
    emit(
        "E5b",
        "deadlock policy: paper timeout vs WFG oracle detection "
        "(same hotspot mix)",
        [
            "policy",
            "commits",
            "aborts",
            "t_aborts",
            "victim_aborts",
            "false_rate",
            "commit/s",
        ],
        rows,
    )
    # WFG kills only real deadlock victims: (almost) no timeout aborts.
    wfg = rows[1]
    assert wfg[3] <= 2

    benchmark.pedantic(run_policy, args=("wfg",), rounds=2, iterations=1)


def test_e5_no_contention_no_aborts(benchmark):
    """Sanity: without a hotspot, generous timeouts commit ~everything."""

    def run():
        system = build_bank_sites(3, 16)
        return run_contention(
            system,
            3,
            16,
            workers=2,
            transactions_per_worker=6,
            hotspot_probability=0.0,
            timeout_s=2.0,
            seed=52,
        )

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.committed >= 10
    assert result.false_timeout_aborts <= 1
