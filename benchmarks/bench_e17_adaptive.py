"""E17 — Adaptive optimization: runtime feedback + mid-query re-planning.

The cost model's statistics are *stale by construction*: MYRIAD gateways
cannot see autonomous local commits, so the federation keeps planning
against yesterday's cardinalities.  This experiment injects exactly that
skew (a local session grows/shrinks a table behind the gateway's back)
and validates the adaptive layer's three claims:

1. **Convergence.** With ``adaptive_feedback=True``, EXPLAIN ANALYZE
   actuals feed per-(site, export, predicate-shape) runtime statistics
   after every execution.  Across repeated runs of the skewed workload
   the estimate-vs-actual bytes error strictly decreases and the total
   simulated cost never increases (``converged=yes`` marker).  The
   runtime-stats version is part of the plan-cache key: plans compiled
   from superseded learned estimates expire by key change, and once the
   estimates converge, cache hits resume.
2. **Mid-query re-planning.** With ``adaptive_replan=True``, a semijoin
   whose source materialises ~200x bigger than estimated is dropped
   mid-query — after the source fetch, before the wasted key shipment —
   for a measurable simulated-cost win over the static plan
   (``replan_win=yes`` marker).
3. **Off-by-default determinism.** With both knobs off (the default),
   simulated accounting is bit-identical to the pre-adaptive system
   (``off_identical=yes`` marker) — the E12/E15 guarantees still hold.
"""

from conftest import emit

from repro.myriad import MyriadSystem

JOIN = "SELECT l.k, r.pad FROM lhs l JOIN rhs r ON l.k = r.k"
RUNS = 4


def build_skewed_join(
    initial_left: int = 50,
    final_left: int = 600,
    right_rows: int = 600,
    payload_width: int = 64,
    **system_kwargs,
) -> MyriadSystem:
    """Two-site join whose left-side statistics are stale by construction.

    Statistics are primed while ``left_t`` holds ``initial_left`` rows,
    then the table drifts to ``final_left`` rows through a local session
    the gateway never observes.
    """
    system = MyriadSystem(query_timeout=5.0, **system_kwargs)
    s1 = system.add_postgres("s1")
    s2 = system.add_oracle("s2")
    s1.dbms.execute(
        "CREATE TABLE left_t (k INTEGER PRIMARY KEY, pad VARCHAR(8))"
    )
    s2.dbms.execute(
        "CREATE TABLE right_t (k INTEGER PRIMARY KEY, pad VARCHAR2(%d))"
        % payload_width
    )
    session = s1.dbms.connect()
    session.begin()
    for key in range(initial_left):
        session.execute("INSERT INTO left_t VALUES (?, ?)", [key, "y" * 8])
    session.commit()
    session = s2.dbms.connect()
    session.begin()
    for key in range(right_rows):
        session.execute(
            "INSERT INTO right_t VALUES (?, ?)", [key, "x" * payload_width]
        )
    session.commit()
    s1.export_table("left_t", "left_rel", ["k", "pad"])
    s2.export_table("right_t", "right_rel", ["k", "pad"])
    fed = system.create_federation("fed")
    fed.define_relation("lhs", "SELECT k, pad FROM s1.left_rel")
    fed.define_relation("rhs", "SELECT k, pad FROM s2.right_rel")
    s1.export_stats("left_rel")  # prime on the pre-skew truth
    s2.export_stats("right_rel")
    session = s1.dbms.connect()
    session.begin()
    if final_left > initial_left:
        for key in range(initial_left, final_left):
            session.execute(
                "INSERT INTO left_t VALUES (?, ?)", [key, "y" * 8]
            )
    else:
        session.execute("DELETE FROM left_t WHERE k >= ?", [final_left])
    session.commit()
    return system


def bytes_error(result) -> float:
    """Sum over fetches of |estimated bytes - measured wire bytes|."""
    total = 0.0
    for fetch in result.plan.fetches:
        actual = result.fetch_actuals.get(fetch.index)
        if actual is None or fetch.est_bytes is None:
            continue
        total += abs(fetch.est_bytes - actual.bytes)
    return total


def test_e17_convergence(benchmark):
    # Fragment cache off so every run measures real wire traffic; plan
    # cache ON so the versioned-invalidation story is part of the run.
    with build_skewed_join(
        adaptive_feedback=True, fragment_cache=False
    ) as system:
        runs = []
        for index in range(RUNS):
            result = system.query("fed", JOIN)
            runs.append(
                (
                    index + 1,
                    bytes_error(result),
                    result.elapsed_s * 1000,
                    result.bytes_shipped,
                    int(system.metrics.counter_total("plancache.hit")),
                )
            )
        store = system.processor("fed").runtime_stats
        errors = [r[1] for r in runs]
        costs = [r[2] for r in runs]
        # Strictly decreasing until the learned estimates converge, then
        # a plateau: once the runtime-stats version stops moving, the
        # plan cache legitimately serves the (already-converged) plan.
        converged = (
            errors[1] < errors[0]
            and errors[-1] < errors[0]
            and all(
                later <= earlier + 1e-9
                for earlier, later in zip(errors, errors[1:])
            )
            and all(
                later <= earlier + 1e-9
                for earlier, later in zip(costs, costs[1:])
            )
        )

        emit(
            "E17",
            "adaptive feedback on a skewed two-site join (left table "
            f"grew 50 -> 600 rows behind the gateway) — converged="
            f"{'yes' if converged else 'NO-DIVERGED'}, "
            f"runtime_stats_version={store.version}, "
            f"entries={len(store)}",
            ["run", "est_bytes_err", "sim_ms", "bytes", "plancache_hits"],
            runs,
        )

        assert converged, (
            "estimate error / simulated cost failed to converge: "
            f"errors={errors}, costs={costs}"
        )
        # Learned estimates stabilised → version stopped moving → the
        # plan cache serves hits again by the end of the workload.
        assert runs[-1][4] > 0, "plan cache never recovered hits"

        benchmark(lambda: system.query("fed", JOIN))


def test_e17_midquery_replan(benchmark):
    with build_skewed_join(initial_left=3, adaptive_replan=True) as system:
        adaptive = system.query("fed", JOIN)
        replans = int(system.metrics.counter_total("query.replans"))
        trigger = next(
            (
                e.fields.get("trigger", "")
                for e in system.events.of_type("query.replan")
            ),
            "",
        )
    with build_skewed_join(initial_left=3) as system:
        static = system.query("fed", JOIN)

    win = (
        sorted(adaptive.rows) == sorted(static.rows)
        and replans >= 1
        and adaptive.elapsed_s < static.elapsed_s
        and adaptive.bytes_shipped < static.bytes_shipped
    )
    emit(
        "E17_REPLAN",
        "mid-query re-planning under stats skew (semijoin source "
        "materialised 600 rows vs 3 estimated) — replan_win="
        f"{'yes' if win else 'NO-LOSS'}, replans={replans}, "
        f"trigger={trigger!r}",
        ["mode", "sim_ms", "bytes", "msgs", "rows"],
        [
            (
                "static plan",
                static.elapsed_s * 1000,
                static.bytes_shipped,
                static.trace.message_count,
                len(static.rows),
            ),
            (
                "adaptive replan",
                adaptive.elapsed_s * 1000,
                adaptive.bytes_shipped,
                adaptive.trace.message_count,
                len(adaptive.rows),
            ),
        ],
    )
    assert win, (
        f"re-planning produced no win: replans={replans}, "
        f"sim {adaptive.elapsed_s} vs {static.elapsed_s}, "
        f"bytes {adaptive.bytes_shipped} vs {static.bytes_shipped}"
    )
    assert "replan@stage" in "\n".join(adaptive.plan.notes)

    with build_skewed_join(initial_left=3, adaptive_replan=True) as system:
        benchmark(lambda: system.query("fed", JOIN))


def test_e17_off_is_bit_identical(benchmark):
    runs = []
    for kwargs in (
        {},  # the seed: knobs absent entirely
        {"adaptive_feedback": False, "adaptive_replan": False},
    ):
        with build_skewed_join(**kwargs) as system:
            result = system.query("fed", JOIN)
            runs.append(
                (
                    result.elapsed_s,
                    result.bytes_shipped,
                    result.trace.message_count,
                    result.fetched_rows,
                    sorted(result.rows),
                )
            )
    identical = runs[0] == runs[1]
    emit(
        "E17_OFF",
        "knobs-off accounting vs. the pre-adaptive seed — off_identical="
        f"{'yes' if identical else 'NO-DIVERGED'}",
        ["config", "sim_ms", "bytes", "msgs", "fetched_rows"],
        [
            ("seed defaults", runs[0][0] * 1000, runs[0][1], runs[0][2], runs[0][3]),
            ("explicit off", runs[1][0] * 1000, runs[1][1], runs[1][2], runs[1][3]),
        ],
    )
    assert identical, f"knobs-off accounting diverged: {runs[0][:4]} vs {runs[1][:4]}"

    with build_skewed_join() as system:
        benchmark(lambda: system.query("fed", JOIN))
