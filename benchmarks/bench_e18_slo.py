"""E18 — Production telemetry: request ids, tail sampling, SLO burn alerts.

Claims validated:

1. **Correlation.** Under a 50+ concurrent-session storm, every query
   carries exactly one stable ``request_id``, joinable across its root
   span, its ``query.slow`` event, its wire-message records, and the
   ``EXPLAIN ANALYZE`` header.
2. **Tail sampling.** With ``trace_sample_rate < 1`` the tracer's memory
   stays bounded and healthy traces are shed — but **100 %** of slow and
   degraded traces are retained.
3. **Burn-rate alerting.** A fault window (crashed site → breaker trips →
   degraded reads) drives the availability SLO's burn-rate alert to fire
   within one evaluation window of the first breaker trip, and the alert
   clears after the site heals and traffic recovers.
4. **E12 guarantees still hold.** With windows + SLOs + sampling active,
   the simulated cost of a query is bit-identical to an
   ``observability=False`` system, and wall-clock overhead stays < 5 %.

Artifacts: ``results/e18_slo.txt`` (phase table with the CI markers
``request_ids=ok``, ``sampling=ok``, ``alerts=ok``, ``identical=yes``)
and ``results/e18_console.txt`` (the live ops console during the fault
and after recovery).
"""

import os
import threading
import time

from conftest import RESULTS_DIR, emit

from repro.net import Network
from repro.obs import BurnRateRule, Observability
from repro.obs.introspect import introspection_snapshot, render_dashboard
from repro.workloads import build_bank_sites

SESSIONS = int(os.environ.get("E18_SESSIONS", "60"))
QUERIES_PER_SESSION = int(os.environ.get("E18_OPS", "3"))
SITES = 3
ACCOUNTS_PER_SITE = 40
#: The overhead phase uses a bigger bank so each query does enough real
#: work for the per-query telemetry cost to amortize (the E12 protocol:
#: overhead is measured on a substantial workload, not a no-op query).
ACCOUNTS_OVERHEAD = 400
SAMPLE_RATE = 0.25
#: Short-windowed burn-rate rule sized for a benchmark-length run.
RULES = (BurnRateRule(long_s=8.0, short_s=1.0, factor=3.0),)

#: Full-scan query: ships every row, so it lands above the slow threshold.
HEAVY_SQL = "SELECT acct, balance FROM accounts WHERE balance >= 0"
#: Point lookup: one row shipped, always under the threshold.
CHEAP_SQL = "SELECT balance FROM accounts WHERE acct = 0"

BATCHES = 7
BATCH_QUERIES = 3


def _build(
    observability: bool = True,
    sample_rate: float = 1.0,
    slow_s: float | None = None,
    max_roots: int = 64,
    accounts: int = ACCOUNTS_PER_SITE,
):
    # Pre-build the observability handle so the tracer's root buffer and
    # sampling rate are explicit; the system adopts a network that already
    # carries one.  Fragment caching is off: a cached fragment ships zero
    # bytes, which would silently demote heavy queries below the slow
    # threshold mid-run.
    network = Network()
    network.obs = Observability(
        enabled=observability,
        max_roots=max_roots,
        slow_query_threshold_s=slow_s,
        trace_sample_rate=sample_rate,
    )
    return build_bank_sites(
        SITES,
        accounts,
        query_timeout=1.0,
        network=network,
        fragment_cache=False,
    )


def _calibrate_slow_threshold() -> float:
    """Midpoint between the cheap and heavy queries' simulated costs."""
    probe = _build()
    heavy = probe.query("bank", HEAVY_SQL).elapsed_s
    cheap = probe.query("bank", CHEAP_SQL).elapsed_s
    probe.close()
    assert cheap < heavy, "workload mix needs distinct latency classes"
    return (cheap + heavy) / 2.0


def _run_storm(system) -> dict:
    """SESSIONS concurrent sessions, mixed cheap/heavy statements."""
    server = system.create_server(max_sessions=SESSIONS + 4)
    lock = threading.Lock()
    collected: list[tuple[str, bool, str, bool]] = []
    errors: list[Exception] = []
    barrier = threading.Barrier(SESSIONS)

    def client(index: int):
        try:
            session = server.connect()
            barrier.wait()
            with session:
                for turn in range(QUERIES_PER_SESSION):
                    heavy = (index + turn) % 3 == 0
                    sql = HEAVY_SQL if heavy else CHEAP_SQL
                    result = session.query("bank", sql)
                    rid = result.request_id
                    header = result.explain_analyze().splitlines()[0]
                    stamped = any(
                        record.request_id == rid
                        for record in result.trace.records
                    )
                    with lock:
                        collected.append((rid, heavy, header, stamped))
        except Exception as error:  # pragma: no cover - surfaced below
            errors.append(error)

    threads = [
        threading.Thread(target=client, args=(index,))
        for index in range(SESSIONS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors
    return {
        "results": collected,
        "peak_sessions": server.stats()["peak"],
    }


def _kept_request_ids(system) -> set:
    return {
        root.tags.get("request")
        for root in system.tracer.roots
        if root.tags.get("request")
    }


def _batch_seconds(system) -> float:
    start = time.perf_counter()
    for _ in range(BATCH_QUERIES):
        system.query("bank", HEAVY_SQL)
    return time.perf_counter() - start


def test_e18_slo(benchmark):
    slow_s = _calibrate_slow_threshold()

    system = _build(
        sample_rate=SAMPLE_RATE, slow_s=slow_s, max_roots=4096
    )
    slo = system.add_slo("availability", objective=0.95, rules=RULES)

    # ------------------------------------------------------------------
    # Phase 1: session storm — request-id correlation + tail sampling.
    # ------------------------------------------------------------------
    storm = _run_storm(system)
    results = storm["results"]
    ids = [rid for rid, _, _, _ in results]
    heavy_ids = {rid for rid, heavy, _, _ in results if heavy}

    assert len(results) == SESSIONS * QUERIES_PER_SESSION
    assert storm["peak_sessions"] >= SESSIONS
    ids_unique = len(set(ids)) == len(ids)
    explain_joinable = all(
        f"request={rid}" in header for rid, _, header, _ in results
    )
    wire_joinable = all(stamped for _, _, _, stamped in results)
    request_ids_ok = ids_unique and explain_joinable and wire_joinable

    kept = _kept_request_ids(system)
    slow_event_ids = {
        event.fields["request"]
        for event in system.events.of_type("query.slow")
    }
    # Every heavy query crossed the threshold, every slow trace was kept,
    # and healthy traces were actually shed by the 0.25 sampling rate.
    sampling_ok = (
        slow_event_ids == heavy_ids
        and heavy_ids <= kept
        and system.tracer.sampled_out > 0
        and len(system.tracer.roots) < len(results)
    )
    storm_sampled_out = system.tracer.sampled_out
    storm_qps = system.obs.window.rate("query.requests", federation="bank")

    # Telemetry memory stays bounded no matter the storm size.
    assert len(system.tracer.roots) <= 4096
    assert system.obs.window.series_count() < 64

    # ------------------------------------------------------------------
    # Phase 2: fault window — breaker trips must drive the burn alert.
    # ------------------------------------------------------------------
    system.network.advance(20.0)  # idle gap: storm ages out of the windows
    faults = system.inject_faults(seed=18)
    faults.crash_site("b2")
    degraded_ids = []
    for _ in range(6):
        result = system.query("bank", HEAVY_SQL, allow_partial=True)
        assert result.degraded and result.missing_sites == ["b2"]
        degraded_ids.append(result.request_id)

    trip_events = [
        e for e in system.events.of_type("health.trip")
        if e.fields["site"] == "b2"
    ]
    firing_events = [
        e for e in system.events.of_type("slo.burn")
        if e.fields["state"] == "firing"
    ]
    assert trip_events, "crashed site never tripped its breaker"
    assert firing_events, "fault window never fired the burn-rate alert"
    trip_sim = trip_events[0].sim_s
    fire_sim = firing_events[0].sim_s
    fired_within_window = 0.0 <= fire_sim - trip_sim <= RULES[0].long_s
    assert slo.alert_active
    assert [a["name"] for a in system.obs.active_alerts()] == [
        "availability"
    ]
    # Degraded traces are always retained, sampling notwithstanding.
    assert set(degraded_ids) <= _kept_request_ids(system)

    dashboard_fault = render_dashboard(introspection_snapshot(system))
    assert "ALERT availability:" in dashboard_fault
    assert "== ops window" in dashboard_fault

    # ------------------------------------------------------------------
    # Phase 3: recovery — the alert must clear once traffic is healthy.
    # ------------------------------------------------------------------
    faults.restart_site("b2")
    system.network.advance(20.0)  # breaker cooldown + bad buckets age out
    for _ in range(4):
        result = system.query("bank", CHEAP_SQL)
        assert not result.degraded
    cleared_events = [
        e for e in system.events.of_type("slo.burn")
        if e.fields["state"] == "cleared"
    ]
    alerts_ok = (
        fired_within_window
        and not slo.alert_active
        and system.obs.active_alerts() == []
        and bool(cleared_events)
        and cleared_events[0].sim_s > fire_sim
        and any(e.type == "health.close" for e in system.events.snapshot())
    )

    dashboard_recovered = render_dashboard(introspection_snapshot(system))
    assert "ALERT availability:" not in dashboard_recovered

    # ------------------------------------------------------------------
    # Phase 4: E12 guarantees — bit-identical sim cost, < 5 % overhead.
    # ------------------------------------------------------------------
    enabled = _build(
        sample_rate=SAMPLE_RATE, slow_s=slow_s, accounts=ACCOUNTS_OVERHEAD
    )
    enabled.add_slo("availability", objective=0.95, rules=RULES)
    disabled = _build(observability=False, accounts=ACCOUNTS_OVERHEAD)

    result_on = enabled.query("bank", HEAVY_SQL)
    result_off = disabled.query("bank", HEAVY_SQL)
    identical = (
        result_on.rows == result_off.rows
        and result_on.elapsed_s == result_off.elapsed_s
        and result_on.bytes_shipped == result_off.bytes_shipped
        and result_on.trace.message_count == result_off.trace.message_count
    )

    on_times, off_times = [], []
    for _ in range(BATCHES):
        on_times.append(_batch_seconds(enabled))
        off_times.append(_batch_seconds(disabled))
    overhead = min(on_times) / min(off_times) - 1.0

    # ------------------------------------------------------------------
    # Report + artifacts
    # ------------------------------------------------------------------
    markers = (
        f"request_ids={'ok' if request_ids_ok else 'BROKEN'} "
        f"sampling={'ok' if sampling_ok else 'BROKEN'} "
        f"alerts={'ok' if alerts_ok else 'BROKEN'} "
        f"identical={'yes' if identical else 'NO'}"
    )
    emit(
        "E18_SLO",
        f"{SESSIONS} sessions x {QUERIES_PER_SESSION} statements, "
        f"sample_rate={SAMPLE_RATE}, fault window on b2 — {markers}",
        [
            "phase",
            "requests",
            "slow",
            "degraded",
            "sampled_out",
            "alert",
            "detail",
        ],
        [
            (
                "storm",
                len(results),
                len(slow_event_ids),
                0,
                storm_sampled_out,
                "-",
                f"qps={storm_qps:.2f} roots={len(system.tracer.roots)}",
            ),
            (
                "fault",
                len(degraded_ids),
                0,
                len(degraded_ids),
                0,
                "FIRING",
                f"trip@{trip_sim:.3f}s fire@{fire_sim:.3f}s",
            ),
            (
                "recovery",
                4,
                0,
                0,
                0,
                "cleared",
                f"clear@{cleared_events[0].sim_s:.3f}s",
            ),
            (
                "overhead",
                BATCHES * BATCH_QUERIES * 2,
                0,
                0,
                0,
                "-",
                f"wall_overhead={overhead * 100:.2f}%",
            ),
        ],
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    console = RESULTS_DIR / "e18_console.txt"
    console.write_text(
        "# E18 ops console — during the fault window\n\n"
        + dashboard_fault
        + "\n\n# E18 ops console — after recovery\n\n"
        + dashboard_recovered
        + "\n"
    )
    print(f"\nwrote {console}", flush=True)

    assert request_ids_ok
    assert sampling_ok
    assert alerts_ok
    assert identical
    assert overhead < 0.05, (
        f"telemetry overhead {overhead:.1%} exceeds the 5% budget"
    )

    disabled.close()
    with enabled:
        benchmark(lambda: enabled.query("bank", HEAVY_SQL))
