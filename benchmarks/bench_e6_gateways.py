"""E6 — Heterogeneous gateways: Oracle vs. Postgres dialect equivalence.

Claim validated (paper §2): gateways on Oracle and Postgres let identical
global queries run against either component, with the translation layer
absorbing dialect differences (type names, LIMIT vs ROWNUM, '' vs NULL,
boolean encoding).  We load the same logical data into both dialects and
require byte-identical global answers; the table reports per-dialect
translation/processing cost.
"""

import random

from conftest import emit

from repro.myriad import MyriadSystem

QUERIES = [
    ("scan", "SELECT id, name, amount FROM items ORDER BY id"),
    ("filter", "SELECT name FROM items WHERE amount > 500 ORDER BY name"),
    ("topk", "SELECT name FROM items ORDER BY amount DESC LIMIT 7"),
    ("agg", "SELECT grp, COUNT(*), AVG(amount) FROM items GROUP BY grp ORDER BY grp"),
    ("like", "SELECT COUNT(*) FROM items WHERE name LIKE 'A%'"),
    (
        "join",
        "SELECT i.name, g.label FROM items i JOIN groups g ON i.grp = g.gid "
        "ORDER BY i.id LIMIT 10",
    ),
]


def build_system(rows: int = 400, seed: int = 61) -> MyriadSystem:
    rng = random.Random(seed)
    system = MyriadSystem()
    ora = system.add_oracle("ora")
    pg = system.add_postgres("pg")

    ora.dbms.execute(
        "CREATE TABLE items_o (id INTEGER PRIMARY KEY, name VARCHAR2(20), "
        "amount NUMBER, grp INTEGER)"
    )
    pg.dbms.execute(
        "CREATE TABLE items_p (id INTEGER PRIMARY KEY, name VARCHAR(20), "
        "amount FLOAT, grp INTEGER)"
    )
    ora.dbms.execute("CREATE TABLE groups_o (gid INTEGER PRIMARY KEY, label VARCHAR2(12))")
    pg.dbms.execute("CREATE TABLE groups_p (gid INTEGER PRIMARY KEY, label VARCHAR(12))")

    data = [
        (
            i,
            rng.choice("ABCDEF") + f"item{i}",
            float(rng.randint(1, 1000)),
            rng.randrange(8),
        )
        for i in range(rows)
    ]
    for session_owner, table in ((ora, "items_o"), (pg, "items_p")):
        session = session_owner.dbms.connect()
        session.begin()
        for row in data:
            session.execute(
                f"INSERT INTO {table} VALUES (?, ?, ?, ?)", list(row)
            )
        session.commit()
    for owner, table in ((ora, "groups_o"), (pg, "groups_p")):
        for gid in range(8):
            owner.dbms.execute(
                f"INSERT INTO {table} VALUES ({gid}, 'G{gid}')"
            )

    ora.export_table("items_o", "items", ["id", "name", "amount", "grp"])
    pg.export_table("items_p", "items", ["id", "name", "amount", "grp"])
    ora.export_table("groups_o", "groups", ["gid", "label"])
    pg.export_table("groups_p", "groups", ["gid", "label"])

    fed_o = system.create_federation("via_oracle")
    fed_o.define_relation("items", "SELECT id, name, amount, grp FROM ora.items")
    fed_o.define_relation("groups", "SELECT gid, label FROM ora.groups")
    fed_p = system.create_federation("via_postgres")
    fed_p.define_relation("items", "SELECT id, name, amount, grp FROM pg.items")
    fed_p.define_relation("groups", "SELECT gid, label FROM pg.groups")
    return system


def normalise(rows):
    return [
        tuple(float(v) if isinstance(v, (int, float)) and not isinstance(v, bool)
              else v for v in row)
        for row in rows
    ]


def test_e6_dialect_equivalence(benchmark):
    system = build_system()
    table_rows = []
    all_equal = True
    for label, sql in QUERIES:
        via_ora = system.query("via_oracle", sql)
        via_pg = system.query("via_postgres", sql)
        equal = normalise(via_ora.rows) == normalise(via_pg.rows)
        all_equal = all_equal and equal
        table_rows.append(
            (
                label,
                len(via_ora.rows),
                "PASS" if equal else "FAIL",
                via_ora.elapsed_s * 1000,
                via_pg.elapsed_s * 1000,
            )
        )
    emit(
        "E6",
        "identical answers through Oracle- and Postgres-dialect gateways",
        ["query", "rows", "equal", "oracle_ms", "postgres_ms"],
        table_rows,
    )
    assert all_equal

    def run_both():
        for _, sql in QUERIES:
            system.query("via_oracle", sql)
            system.query("via_postgres", sql)

    benchmark(run_both)


def test_e6_translation_exercised(benchmark):
    """The Oracle path really goes through ROWNUM/'' rewriting."""
    system = build_system(rows=50)
    # LIMIT → ROWNUM: the shipped SQL for the oracle site must not say LIMIT.
    from repro.sql import to_sql
    from repro.gateway.translate import rewrite_exports
    from repro.sql import parse_query

    gateway = system.gateway("ora")
    query = parse_query("SELECT name FROM items LIMIT 3")
    local = rewrite_exports(query, gateway.exports)
    text = to_sql(local, gateway.dbms.dialect)
    assert "LIMIT" not in text
    assert "ROWNUM" in text
    result = gateway.execute_query(query)
    assert len(result) == 3

    benchmark(lambda: gateway.execute_query(query))
