"""E3 — Semijoin-reduction ablation.

Design choice ablated (DESIGN.md §5.1): shipping the small side's join keys
to reduce the big side wins when few big-side rows match, and stops paying
off as the match fraction rises (the classic distributed-join crossover).
"""

from conftest import emit

from repro.workloads import build_two_site_join

MATCH_FRACTIONS = [0.02, 0.1, 0.25, 0.5, 0.9]
SQL = (
    "SELECT l.k, r.val FROM lhs l JOIN rhs r ON l.k = r.k "
    "WHERE l.flt < 0.15"
)


def test_e3_match_fraction_sweep(benchmark):
    rows = []
    for match in MATCH_FRACTIONS:
        system = build_two_site_join(
            300, 4000, match_fraction=match, payload_width=40, seed=31
        )
        plain = system.query("synth", SQL, optimizer="cost-nosemijoin")
        semi = system.query("synth", SQL, optimizer="cost")
        assert sorted(plain.rows) == sorted(semi.rows)
        applied = any(f.semijoin is not None for f in semi.plan.fetches)
        rows.append(
            (
                match,
                "yes" if applied else "no",
                plain.bytes_shipped,
                semi.bytes_shipped,
                plain.elapsed_s * 1000,
                semi.elapsed_s * 1000,
            )
        )
    emit(
        "E3",
        "semijoin ablation vs join match fraction (300 x 4000 rows)",
        ["match", "semijoin", "nosemi_B", "semi_B", "nosemi_ms", "semi_ms"],
        rows,
    )
    # Shape: at the lowest match fraction semijoin must save bytes.
    lowest = rows[0]
    assert lowest[3] < lowest[2]
    # Savings shrink monotonically as the match fraction grows.
    savings = [row[2] - row[3] for row in rows]
    assert savings[0] == max(savings)

    system = build_two_site_join(300, 2000, match_fraction=0.05, seed=32)
    benchmark(lambda: system.query("synth", SQL, optimizer="cost"))


def test_e3_semijoin_declined_when_unhelpful(benchmark):
    """A reduction that cannot remove rows must be declined.

    Without any predicate, the left side ships all 3000 distinct keys —
    a superset of the right side's join keys, so reducing the right fetch
    saves nothing and costs a 36KB IN-list; the model must say no to that
    direction.
    """
    system = build_two_site_join(
        3000, 3000, match_fraction=1.0, payload_width=4, seed=33
    )
    no_predicate_sql = "SELECT l.k, r.val FROM lhs l JOIN rhs r ON l.k = r.k"
    plan = benchmark.pedantic(
        lambda: system.processor("synth").plan(no_predicate_sql, "cost"),
        rounds=3,
        iterations=1,
    )
    right_fetches = [f for f in plan.fetches if f.export == "right_rel"]
    assert right_fetches
    assert all(f.semijoin is None for f in right_fetches)
