"""Shared helpers for the benchmark/experiment harness.

Every experiment Ex from DESIGN.md §4 has one ``bench_ex_*.py`` file here.
Each file:

- sweeps the experiment's parameters on the simulated system, collecting
  *virtual* metrics (bytes shipped, messages, simulated seconds) that are
  deterministic and machine-independent,
- prints the result table (and appends it to ``benchmarks/results/``), and
- wall-clock benchmarks one representative operation via pytest-benchmark.

Run:  pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(experiment: str, title: str, header: list[str], rows: list[tuple]) -> str:
    """Format, print, and persist one experiment table."""
    widths = [len(h) for h in header]
    rendered = [[_fmt(value) for value in row] for row in rows]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [f"# {experiment}: {title}"]
    lines.append(" | ".join(h.rjust(w) for h, w in zip(header, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    text = "\n".join(lines)
    print("\n" + text + "\n", flush=True)
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / f"{experiment.lower()}.txt"
    out.write_text(text + "\n")
    return text


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
