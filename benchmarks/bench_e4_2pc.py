"""E4 — Two-phase commit: serializable execution, cost scaling with sites.

Claims validated (paper §2): 2PC over the locals' 2PL yields serializable
global execution (money-conservation invariant under a transfer mix) and
the commit protocol's message/latency cost grows linearly with the number
of participant sites.
"""

from conftest import emit

from repro.workloads import build_bank_sites, total_balance

SITE_COUNTS = [1, 2, 4, 8]


def run_transfer(system, site_count):
    """One global transaction touching every site; returns (msgs, sim_s)."""
    txn = system.begin_transaction()
    for index in range(site_count):
        txn.execute(
            f"b{index}",
            f"UPDATE account SET balance = balance + 0 WHERE acct = "
            f"{index * 4}",
        )
    before_msgs = txn.trace.message_count
    before_elapsed = txn.trace.elapsed_s
    txn.commit()
    return (
        txn.trace.message_count - before_msgs,
        txn.trace.elapsed_s - before_elapsed,
    )


def test_e4_commit_cost_scaling(benchmark):
    rows = []
    for site_count in SITE_COUNTS:
        system = build_bank_sites(site_count, 4, query_timeout=2.0)
        msgs, sim_s = run_transfer(system, site_count)
        protocol = "1-phase" if site_count == 1 else "2PC"
        rows.append((site_count, protocol, msgs, sim_s * 1000))
    emit(
        "E4a",
        "commit cost vs participant count (messages + simulated ms)",
        ["sites", "protocol", "commit_msgs", "commit_ms"],
        rows,
    )
    # Shape: 2 messages per participant and phase; linear growth.
    assert rows[0][2] == 2  # single site: commit+ack only
    for (sites, _, msgs, _) in rows[1:]:
        assert msgs == 4 * sites  # prepare+vote+commit+ack per site
    latencies = [row[3] for row in rows]
    assert latencies == sorted(latencies)

    system = build_bank_sites(4, 4, query_timeout=2.0)
    benchmark(run_transfer, system, 4)


def test_e4_serializability_invariant(benchmark):
    """A mixed transfer workload conserves total balance exactly."""
    import random

    system = build_bank_sites(4, 8, query_timeout=2.0)
    initial = total_balance(system)
    rng = random.Random(41)

    def run_mix():
        for _ in range(15):
            source = rng.randrange(4)
            target = (source + 1 + rng.randrange(3)) % 4
            amount = rng.randint(1, 20)
            txn = system.begin_transaction()
            txn.execute(
                f"b{source}",
                f"UPDATE account SET balance = balance - {amount} "
                f"WHERE acct = {source * 8 + rng.randrange(8)}",
            )
            txn.execute(
                f"b{target}",
                f"UPDATE account SET balance = balance + {amount} "
                f"WHERE acct = {target * 8 + rng.randrange(8)}",
            )
            txn.commit()

    benchmark.pedantic(run_mix, rounds=3, iterations=1)
    assert total_balance(system) == initial

    rows = [
        ("transfers committed", system.transactions.commits),
        ("aborts", system.transactions.aborts),
        ("balance drift", total_balance(system) - initial),
    ]
    emit("E4b", "serializability invariant", ["metric", "value"], rows)


def test_e4_abort_cost(benchmark):
    """Global aborts are cheaper than commits (no voting round)."""
    system = build_bank_sites(4, 4, query_timeout=2.0)

    def abort_txn():
        txn = system.begin_transaction()
        for index in range(4):
            txn.execute(
                f"b{index}",
                f"UPDATE account SET balance = 0 WHERE acct = {index * 4}",
            )
        before = txn.trace.message_count
        txn.abort()
        return txn.trace.message_count - before

    abort_msgs = abort_txn()
    commit_msgs, _ = run_transfer(system, 4)
    assert abort_msgs < commit_msgs
    benchmark(abort_txn)
