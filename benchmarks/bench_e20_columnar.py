"""E20 — Columnar engine + dict/RLE wire compression.

Claims validated (results carry markers CI greps for):

1. **Identical results.** Every query shape returns the same row multiset
   on the row-at-a-time and vectorized engines, and federated results are
   identical with and without wire compression (``identical=yes``).
2. **Vectorized speedup.** Batch-at-a-time execution is at least **2×**
   faster wall-clock than row-at-a-time on scan / filter / join /
   aggregate microbenchmarks (``speedup=yes``).
3. **Wire win.** Dict/RLE encoding of shipped fragments cuts simulated
   bytes-on-wire by at least **30%** on the synthetic bank workload, with
   results and message counts unchanged (``wire_win=yes``).
4. **Determinism.** With both knobs off, simulated accounting is
   bit-identical to the baseline system.
"""

import random
import time

from conftest import emit

from repro.engine import LocalEngine
from repro.storage import Catalog
from repro.workloads import build_bank_sites

ROWS = 30_000
TARGET_SPEEDUP = 2.0
TARGET_WIRE_DROP = 0.30

SCAN_SQL = "SELECT grp, val FROM fact"
FILTER_SQL = "SELECT id, val FROM fact WHERE val < 0.2 AND grp > 5"
JOIN_SQL = (
    "SELECT d.label, f.val FROM fact f JOIN dim d ON f.grp = d.gid "
    "WHERE f.val < 0.5"
)
AGG_SQL = (
    "SELECT grp, COUNT(*), SUM(val), AVG(val), MIN(val), MAX(val) "
    "FROM fact GROUP BY grp"
)

BANK_SCAN = "SELECT acct, balance FROM accounts WHERE balance >= 0"


def build_engine() -> LocalEngine:
    engine = LocalEngine(Catalog("e20"))
    engine.execute(
        "CREATE TABLE fact (id INTEGER PRIMARY KEY, grp INTEGER, "
        "val FLOAT, pad VARCHAR(16))"
    )
    engine.execute(
        "CREATE TABLE dim (gid INTEGER PRIMARY KEY, label VARCHAR(12))"
    )
    rng = random.Random(20)
    fact = engine.catalog.get_table("fact")
    for i in range(ROWS):
        fact.insert((i, rng.randrange(64), rng.random(), "x" * 16))
    dim = engine.catalog.get_table("dim")
    for g in range(64):
        dim.insert((g, f"G{g}"))
    return engine


def _timed(engine, sql, repeats=5):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = engine.execute(sql)
        best = min(best, time.perf_counter() - start)
    return best, result


def test_e20_vectorized_speedup(benchmark):
    """Per-operator wall clock, row vs vectorized, on one 30k-row table."""
    engine = build_engine()
    table_rows = []
    all_identical = True
    all_fast = True
    for label, sql in [
        ("seq scan", SCAN_SQL),
        ("filter", FILTER_SQL),
        ("hash join", JOIN_SQL),
        ("aggregate", AGG_SQL),
    ]:
        engine.vectorized = False
        row_s, row_result = _timed(engine, sql)
        engine.vectorized = True
        vec_s, vec_result = _timed(engine, sql)
        engine.vectorized = False
        identical = sorted(row_result.rows, key=repr) == sorted(
            vec_result.rows, key=repr
        )
        speedup = row_s / vec_s
        all_identical &= identical
        all_fast &= speedup >= TARGET_SPEEDUP
        table_rows.append(
            (label, row_s * 1000, vec_s * 1000, speedup,
             "yes" if identical else "NO")
        )
    table_rows.append(
        ("identical=%s" % ("yes" if all_identical else "NO"),
         "", "", "", ""))
    table_rows.append(
        ("speedup=%s" % ("yes" if all_fast else "NO"), "", "", "", ""))
    emit(
        "E20a",
        f"vectorized engine vs row-at-a-time ({ROWS}-row table)",
        ["operator", "row ms", "vec ms", "speedup", "identical"],
        table_rows,
    )
    assert all_identical
    assert all_fast
    engine.vectorized = True
    benchmark(lambda: engine.execute(AGG_SQL))


def test_e20_wire_compression(benchmark):
    """Bytes-on-wire with and without the fragment codec (bank workload)."""

    def run(**knobs):
        system = build_bank_sites(4, 300, **knobs)
        with system:
            result = system.query("bank", BANK_SCAN)
            return (
                sorted(result.rows),
                result.bytes_shipped,
                result.trace.message_count,
                result.elapsed_s,
            )

    base_rows, base_bytes, base_msgs, base_sim = run()
    comp_rows, comp_bytes, comp_msgs, comp_sim = run(wire_compression=True)
    off_rows, off_bytes, off_msgs, off_sim = run(
        vectorized=False, wire_compression=False
    )

    identical = base_rows == comp_rows and base_msgs == comp_msgs
    drop = 1 - comp_bytes / base_bytes
    bit_identical = (off_rows, off_bytes, off_msgs, off_sim) == (
        base_rows, base_bytes, base_msgs, base_sim
    )
    emit(
        "E20b",
        "wire compression on the bank workload (4 sites x 300 accounts)",
        ["config", "bytes", "messages", "sim ms"],
        [
            ("raw", base_bytes, base_msgs, base_sim * 1000),
            ("dict/rle", comp_bytes, comp_msgs, comp_sim * 1000),
            (f"drop {drop * 100:.1f}%", "", "", ""),
            ("identical=%s" % ("yes" if identical else "NO"), "", "", ""),
            ("wire_win=%s"
             % ("yes" if drop >= TARGET_WIRE_DROP else "NO"), "", "", ""),
            ("knobs_off_bit_identical=%s"
             % ("yes" if bit_identical else "NO"), "", "", ""),
        ],
    )
    assert identical
    assert drop >= TARGET_WIRE_DROP
    assert bit_identical

    system = build_bank_sites(4, 300, wire_compression=True)
    with system:
        benchmark(lambda: system.query("bank", BANK_SCAN))
