"""E14 — Chaos verification: crash-schedule exploration of 2PC recovery.

Claim hardened (paper §2): the presumed-abort 2PC protocol with durable
coordinator logging recovers to an *atomic, lock-free, agreed* state no
matter where the coordinator or a participant dies.  E11 injected message
loss at the network layer; E14 goes further and kills a *process* at every
enumerated protocol point — before/after each ``COORD_*`` WAL append,
between individual prepare votes, around each decision delivery — then runs
``recover_in_doubt`` and audits five invariants (atomic commit, no lost
committed writes, no surviving branches, no orphaned locks or local
transactions, pending-delivery list drained).

Method: :mod:`repro.chaos` enumerates the crash points that fire for a
three-branch bank transfer (full 2PC, 17 points) and a single-branch update
(one-phase optimisation, 5 points), then crashes each role at each point
under ``SEEDS`` different seeds (seed varies the transfer amount and the
participant-crash victim).  Every run must finish with zero violations; the
full invariant report is persisted as the CI artifact
``results/e14_invariant_report.txt``.
"""

from conftest import RESULTS_DIR, emit

from repro.chaos import enumerate_crash_points, run_crash, run_sweep

#: ≥20 seeds per the experiment design; each is a distinct schedule.
SEEDS = range(20)

REPORT_PATH = RESULTS_DIR / "e14_invariant_report.txt"


def test_e14_crash_schedule_sweep(benchmark):
    # Every protocol point must actually be explored for both workloads.
    points_2pc = enumerate_crash_points("2pc")
    points_1pc = enumerate_crash_points("1pc")
    assert len(points_2pc) >= 15
    assert "before_coord_commit" in points_2pc
    assert "after_coord_begin_2pc" in points_2pc
    assert "before_deliver:b2" in points_2pc
    assert "before_coord_commit" in points_1pc  # the closed 1PC gap

    report = run_sweep(SEEDS)

    # Coverage: both roles crashed at every enumerated point, all seeds.
    seeds = len(list(SEEDS))
    for role in ("coordinator", "participant"):
        assert report.points("2pc", role) == sorted(points_2pc)
        assert report.points("1pc", role) == sorted(points_1pc)
    assert len(report.runs) == seeds * 2 * (len(points_2pc) + len(points_1pc))

    # The whole point: zero invariant violations anywhere in the sweep.
    RESULTS_DIR.mkdir(exist_ok=True)
    REPORT_PATH.write_text(report.render() + "\n")
    assert report.ok, report.render()

    rows = [
        (
            row["mode"],
            row["role"],
            row["runs"],
            row["points"],
            row["committed"],
            row["aborted"],
            row["crash"],
            row["recovered_actions"],
            row["violations"],
        )
        for row in report.summary()
    ]
    emit(
        "E14",
        f"chaos sweep: crash each role at every 2PC/WAL protocol point "
        f"({seeds} seeds, invariants per run: atomicity, durability, "
        "no orphaned branches/locks)",
        [
            "mode",
            "role",
            "runs",
            "points",
            "committed",
            "aborted",
            "crash",
            "recovered",
            "violations",
        ],
        rows,
    )

    # Shape: a coordinator crash mid-protocol never reports an outcome to
    # the application (it died), while a participant crash always lets the
    # coordinator reach a decision (commit or abort, never silence).
    by_key = {(row[0], row[1]): row for row in rows}
    assert by_key[("2pc", "coordinator")][6] == by_key[("2pc", "coordinator")][2]
    assert by_key[("2pc", "participant")][6] == 0
    assert by_key[("2pc", "participant")][5] > 0  # crashed voters force aborts
    assert by_key[("1pc", "participant")][4] == by_key[("1pc", "participant")][2]

    # Wall-clock one representative schedule: coordinator death after the
    # durable COORD_COMMIT but before any delivery (the classic in-doubt
    # window), including recovery and the invariant audit.
    benchmark.pedantic(
        run_crash,
        args=("coordinator", "after_coord_commit", 0, "2pc"),
        rounds=3,
        iterations=1,
    )
