"""E10 — Aggregate-pushdown ablation (optimizer extension).

The paper left its "full-fledged" optimizer in development; partial
aggregation at component sites is the natural next rewrite after
selection/projection pushdown.  This experiment quantifies it: aggregate
queries over a union-merged relation with and without the rewrite, as the
per-site row count grows.
"""

from conftest import emit

from repro.workloads import build_partitioned_sites

ROWS = [500, 2000, 8000]
SQL = (
    "SELECT grp, COUNT(*), SUM(val), AVG(val) FROM measurements "
    "GROUP BY grp ORDER BY grp"
)


def _norm(rows):
    return sorted(
        tuple(round(float(v), 6) if isinstance(v, (int, float)) else v
              for v in row)
        for row in rows
    )


def test_e10_aggregate_pushdown(benchmark):
    table = []
    for rows_per_site in ROWS:
        system = build_partitioned_sites(4, rows_per_site, seed=101)
        plain = system.query("synth", SQL, optimizer="cost-noaggpush")
        pushed = system.query("synth", SQL, optimizer="cost")
        assert _norm(plain.rows) == _norm(pushed.rows)
        table.append(
            (
                rows_per_site,
                plain.fetched_rows,
                pushed.fetched_rows,
                plain.bytes_shipped,
                pushed.bytes_shipped,
                plain.elapsed_s * 1000,
                pushed.elapsed_s * 1000,
            )
        )
    emit(
        "E10",
        "aggregate pushdown ablation (4 sites, 16 groups)",
        [
            "rows/site",
            "rows_plain",
            "rows_push",
            "B_plain",
            "B_push",
            "ms_plain",
            "ms_push",
        ],
        table,
    )
    # Shape: pushed fetches stay at ~groups x sites rows no matter the size.
    for rows_per_site, _, pushed_rows, _, pushed_bytes, _, _ in table:
        assert pushed_rows <= 16 * 4
    # Plain cost grows with data; pushed stays flat.
    assert table[-1][4] < table[-1][3] / 20

    system = build_partitioned_sites(4, 2000, seed=101)
    benchmark(lambda: system.query("synth", SQL, optimizer="cost"))


def test_e10b_topn_pushdown(benchmark):
    """Companion rewrite: top-N pushdown through the union view."""
    table = []
    sql = "SELECT k, val FROM measurements ORDER BY val DESC LIMIT 5"
    for rows_per_site in ROWS:
        system = build_partitioned_sites(4, rows_per_site, seed=102)
        plain = system.query("synth", sql, optimizer="cost-noaggpush")
        pushed = system.query("synth", sql, optimizer="cost")
        assert _norm(plain.rows) == _norm(pushed.rows)
        table.append(
            (
                rows_per_site,
                plain.fetched_rows,
                pushed.fetched_rows,
                plain.bytes_shipped,
                pushed.bytes_shipped,
            )
        )
    emit(
        "E10b",
        "top-N pushdown ablation (ORDER BY val DESC LIMIT 5, 4 sites)",
        ["rows/site", "rows_plain", "rows_push", "B_plain", "B_push"],
        table,
    )
    for _, _, pushed_rows, _, _ in table:
        assert pushed_rows <= 20  # 5 per site

    system = build_partitioned_sites(4, 2000, seed=102)
    benchmark(lambda: system.query("synth", sql, optimizer="cost"))
