"""E9 — Local-engine microbenchmarks (substrate sanity).

Not a paper claim but the substrate every experiment stands on: wall-clock
throughput of the from-scratch SQL engine for scans, filters, joins,
aggregation, and the index-vs-seq-scan access-path choice.
"""

import random

from conftest import emit

from repro.engine import LocalEngine
from repro.storage import Catalog

ROWS = 5000


def build_engine() -> LocalEngine:
    engine = LocalEngine(Catalog("micro"))
    engine.execute(
        "CREATE TABLE fact (id INTEGER PRIMARY KEY, grp INTEGER, "
        "val FLOAT, tag VARCHAR(12))"
    )
    engine.execute(
        "CREATE TABLE dim (gid INTEGER PRIMARY KEY, label VARCHAR(12))"
    )
    rng = random.Random(91)
    table = engine.catalog.get_table("fact")
    for i in range(ROWS):
        table.insert((i, rng.randrange(50), rng.random(), f"t{i % 7}"))
    dim = engine.catalog.get_table("dim")
    for g in range(50):
        dim.insert((g, f"G{g}"))
    engine.execute("CREATE INDEX fact_grp ON fact (grp)")
    return engine


def test_e9_seq_scan(benchmark):
    engine = build_engine()
    result = benchmark(lambda: engine.execute("SELECT COUNT(*) FROM fact"))
    assert result.scalar() == ROWS


def test_e9_filter_scan(benchmark):
    engine = build_engine()
    result = benchmark(
        lambda: engine.execute("SELECT COUNT(*) FROM fact WHERE val < 0.1")
    )
    assert 0 < result.scalar() < ROWS


def test_e9_index_point_lookup(benchmark):
    engine = build_engine()
    assert "IndexScan" in engine.explain("SELECT * FROM fact WHERE id = 42")
    result = benchmark(
        lambda: engine.execute("SELECT val FROM fact WHERE id = 42")
    )
    assert len(result) == 1


def test_e9_index_vs_seq_selectivity(benchmark):
    """Index scans must beat seq scans for selective predicates."""
    import time

    engine = build_engine()

    def timed(sql, repeats=20):
        start = time.perf_counter()
        for _ in range(repeats):
            engine.execute(sql)
        return (time.perf_counter() - start) / repeats

    selective_indexed = timed("SELECT val FROM fact WHERE grp = 7")
    assert "IndexScan" in engine.explain("SELECT val FROM fact WHERE grp = 7")
    full = timed("SELECT val FROM fact WHERE grp + 0 = 7")  # defeats the index
    emit(
        "E9a",
        "access path: indexed vs full scan (wall ms/query)",
        ["access", "ms"],
        [("index grp=7", selective_indexed * 1000), ("seq grp=7", full * 1000)],
    )
    assert selective_indexed < full
    benchmark(lambda: engine.execute("SELECT val FROM fact WHERE grp = 7"))


def test_e9_hash_join(benchmark):
    engine = build_engine()
    sql = (
        "SELECT d.label, COUNT(*) FROM fact f JOIN dim d ON f.grp = d.gid "
        "GROUP BY d.label"
    )
    assert "HashJoin" in engine.explain(sql)
    result = benchmark(lambda: engine.execute(sql))
    assert len(result) == 50


def test_e9_aggregate(benchmark):
    engine = build_engine()
    result = benchmark(
        lambda: engine.execute(
            "SELECT grp, AVG(val), MIN(val), MAX(val) FROM fact GROUP BY grp"
        )
    )
    assert len(result) == 50


def test_e9_sort_topk(benchmark):
    engine = build_engine()
    result = benchmark(
        lambda: engine.execute(
            "SELECT id FROM fact ORDER BY val DESC LIMIT 10"
        )
    )
    assert len(result) == 10


def test_e9_throughput_report(benchmark):
    """Rows/second summary for the substrate table in EXPERIMENTS.md."""
    import time

    engine = build_engine()
    rows = []
    for label, sql in [
        ("seq scan", "SELECT COUNT(*) FROM fact"),
        ("filter", "SELECT COUNT(*) FROM fact WHERE val < 0.5"),
        ("hash join", "SELECT COUNT(*) FROM fact f JOIN dim d ON f.grp = d.gid"),
        ("group by", "SELECT grp, COUNT(*) FROM fact GROUP BY grp"),
    ]:
        start = time.perf_counter()
        repeats = 5
        for _ in range(repeats):
            engine.execute(sql)
        per_query = (time.perf_counter() - start) / repeats
        rows.append((label, per_query * 1000, ROWS / per_query))
    emit("E9b", "local engine throughput (5000-row table)",
         ["operator", "ms/query", "rows/s"], rows)
    benchmark(lambda: engine.execute("SELECT COUNT(*) FROM fact"))
