"""E19 — Replication: follower-read scaling and deterministic failover.

MYRIAD's availability story (paper §6 lists replication among the open
engineering problems) reproduced on the simulated network: every
component site becomes a Raft-style replica group (``replication_factor``
replicas, term-based elections on seeded timers, majority-ack log
replication of autocommit DML, 2PC write-sets, and commit/abort
decisions).

Two claims are measured:

1. **Reads scale with replicas, writes pay for durability.**  A read-only
   workload over replica groups serves snapshot SELECTs from bounded-
   staleness followers (``follower_reads=True``) — per-fragment reads
   spread round-robin over the group while the per-read cost stays flat.
   Writes replicate to a majority before acknowledging, so write cost
   grows with the group size — the table shows both sides.

2. **Leader kills never lose an acknowledged write.**  The replication
   chaos module kills the group leader at every enumerated protocol point
   (around prepare/commit log appends, commit-index advancement,
   mid-election) under ``SEEDS`` seeds, heals, converges, and audits:
   single leader per term, no committed-then-lost entry, post-heal replica
   convergence, plus the base 2PC invariants.  Write availability must be
   total — zero lost writes outside deliberate quorum-loss schedules —
   and failover latency bounded by the election-timeout envelope.  The
   invariant report (greppable ``invariants=ok`` / ``failover=ok``) is
   persisted as the CI artifact ``results/e19_invariant_report.txt``.
"""

from conftest import RESULTS_DIR, emit

from repro.chaos import (
    enumerate_replication_points,
    run_replica_crash,
    run_replica_sweep,
)
from repro.replication import ELECTION_TIMEOUT_S, MAX_ELECTION_ROUNDS
from repro.workloads import build_bank_sites

SEEDS = range(6)
READS = 30
WRITES = 5

REPORT_PATH = RESULTS_DIR / "e19_invariant_report.txt"


def _read_write_profile(replicas: int, follower_reads: bool):
    # Fragment caching off: every read must actually reach the sites, so
    # the follower-serving share is what the table measures.
    system = build_bank_sites(
        3,
        8,
        query_timeout=1.0,
        replication_factor=replicas,
        follower_reads=follower_reads,
        fragment_cache=False,
    )
    try:
        read_start = system.network.now_s
        for _ in range(READS):
            result = system.query(
                "bank", "SELECT SUM(balance) FROM accounts"
            )
            assert float(result.scalar()) == 3 * 8 * 1000.0
        read_s = system.network.now_s - read_start
        served = sum(
            group.follower_reads
            for group in system.replica_groups.values()
        )

        write_start = system.network.now_s
        messages_before = system.network.total_messages
        for index in range(WRITES):
            system.gateways["b0"].execute_update(
                "UPDATE account SET balance = balance + 1 "
                f"WHERE acct = {index}",
                None,
            )
        write_s = system.network.now_s - write_start
        write_msgs = system.network.total_messages - messages_before
        return {
            "replicas": replicas,
            "follower_reads": follower_reads,
            "reads": READS * 3,  # three fragment fetches per query
            "read_sim_s": read_s,
            "reads_per_s": (READS * 3) / read_s if read_s else 0.0,
            "follower_served": served,
            "write_sim_s": write_s,
            "write_msgs_per_op": write_msgs / WRITES,
        }
    finally:
        system.close()


def test_e19_replication(benchmark):
    # -- read scaling / write amplification sweep -----------------------
    profiles = [
        _read_write_profile(replicas, follower_reads)
        for replicas in (1, 2, 3, 5)
        for follower_reads in (
            (False, True) if replicas > 1 else (False,)
        )
    ]
    emit(
        "E19",
        "replication: follower-read serving and write amplification vs "
        f"replica count ({READS} federated reads, {WRITES} writes)",
        [
            "replicas",
            "follower_reads",
            "site_reads",
            "read_sim_s",
            "reads_per_sim_s",
            "follower_served",
            "write_sim_s",
            "write_msgs_per_op",
        ],
        [
            (
                p["replicas"],
                "on" if p["follower_reads"] else "off",
                p["reads"],
                p["read_sim_s"],
                p["reads_per_s"],
                p["follower_served"],
                p["write_sim_s"],
                p["write_msgs_per_op"],
            )
            for p in profiles
        ],
    )
    by_key = {(p["replicas"], p["follower_reads"]): p for p in profiles}
    # follower reads actually serve from followers once enabled
    assert by_key[(3, True)]["follower_served"] == READS * 3
    assert by_key[(3, False)]["follower_served"] == 0
    # write durability amplifies with the group size...
    assert (
        by_key[(5, False)]["write_msgs_per_op"]
        > by_key[(3, False)]["write_msgs_per_op"]
        > by_key[(1, False)]["write_msgs_per_op"]
    )
    # ...while the per-read cost stays flat as replicas are added
    assert by_key[(5, True)]["read_sim_s"] <= by_key[(1, False)][
        "read_sim_s"
    ] * 1.05

    # -- leader-kill availability sweep ---------------------------------
    points = enumerate_replication_points()
    for kind in ("prepare", "commit"):
        assert f"before_append:{kind}" in points
        assert f"mid_append:{kind}" in points
        assert f"before_commit_advance:{kind}" in points
    assert "mid_election" in points

    report = run_replica_sweep(SEEDS)
    assert len(report.runs) == len(points) * len(list(SEEDS))

    RESULTS_DIR.mkdir(exist_ok=True)
    REPORT_PATH.write_text(report.render() + "\n")

    # Zero invariant violations, zero lost writes (quorum present).
    assert report.ok, report.render()
    assert report.failed_writes == 0, report.render()
    # Failover latency is bounded by the election-timeout envelope.
    assert (
        report.max_failover_latency_s
        <= MAX_ELECTION_ROUNDS * ELECTION_TIMEOUT_S[1]
    )

    outcomes = {"committed": 0, "aborted": 0, "unavailable": 0}
    for run in report.runs:
        outcomes[run.app_outcome] += 1
    emit(
        "E19_FAILOVER",
        "replication: leader killed at every protocol point "
        f"({len(points)} points x {len(list(SEEDS))} seeds)",
        [
            "runs",
            "points",
            "committed",
            "aborted",
            "unavailable",
            "failovers",
            "max_failover_ms",
            "lost_writes",
            "violations",
        ],
        [
            (
                len(report.runs),
                len(points),
                outcomes["committed"],
                outcomes["aborted"],
                outcomes["unavailable"],
                sum(r.failovers for r in report.runs),
                report.max_failover_latency_s * 1000.0,
                report.failed_writes,
                len(report.violations),
            )
        ],
    )

    # Wall-clock one representative schedule: leader killed while the
    # commit decision replicates (the in-doubt window of the group).
    benchmark.pedantic(
        run_replica_crash,
        args=("mid_append:commit", 0),
        rounds=3,
        iterations=1,
    )
