"""E13 — Telemetry export: exporter cost and lossless bundle round-trip.

Claims validated:

1. Exporting telemetry is cheap and read-only: serialising the full span
   buffer to Chrome trace JSON (both clocks), the metrics registry to
   Prometheus text + JSON, and the event log to JSONL each cost milliseconds
   on a telemetry-heavy run, and none of them perturbs the live telemetry
   (the observability report is byte-identical before and after exporting).
2. Every export is schema-valid: the Chrome traces pass
   :func:`~repro.obs.export.validate_chrome_trace` (required keys, numeric
   non-negative ts/dur, per-track monotone timestamps) and the Prometheus
   page passes :func:`~repro.obs.export.validate_prometheus_text`.
3. The debug bundle is a *lossless* post-mortem: dumping a faulty run
   (commits, aborts, a vote-NO, a parked commit decision, recovery) and
   reloading the bundle reproduces ``observability_report()`` byte-for-byte
   and the event log and metrics snapshot exactly.

The bundle written by the round-trip test is left in
``benchmarks/results/e13_bundle/`` so CI can upload it as an artifact and
``python -m repro.obs.report --bundle`` can open it.
"""

import json
import shutil
import time

from conftest import RESULTS_DIR, emit

from repro.obs.export import (
    load_debug_bundle,
    metrics_to_json,
    metrics_to_prometheus,
    spans_to_chrome_trace,
    validate_chrome_trace,
    validate_prometheus_text,
)
from repro.obs.report import build_demo_system
from repro.workloads import build_partitioned_sites

SITE_COUNT = 4
ROWS_PER_SITE = 300
SQL_AGG = (
    "SELECT grp, COUNT(*), AVG(val) FROM measurements "
    "GROUP BY grp ORDER BY grp"
)
QUERY_ROUNDS = 8


def _telemetry_heavy_system():
    system = build_partitioned_sites(SITE_COUNT, ROWS_PER_SITE, seed=82)
    system.obs.slow_query_threshold_s = 0.0  # every query logs an event
    for _ in range(QUERY_ROUNDS):
        system.query("synth", SQL_AGG)
    return system


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, (time.perf_counter() - start) * 1000


def test_e13_export_overhead(benchmark):
    system = _telemetry_heavy_system()
    before = system.observability_report()

    trace_wall, wall_ms = _timed(
        lambda: spans_to_chrome_trace(system.tracer, clock="wall")
    )
    trace_sim, sim_ms = _timed(
        lambda: spans_to_chrome_trace(system.tracer, clock="sim")
    )
    prom, prom_ms = _timed(lambda: metrics_to_prometheus(system.metrics))
    mjson, json_ms = _timed(lambda: metrics_to_json(system.metrics))
    jsonl, events_ms = _timed(system.obs.events.to_jsonl)

    # Claim 2: everything exported is schema-valid.
    assert validate_chrome_trace(trace_wall) == []
    assert validate_chrome_trace(trace_sim) == []
    assert validate_prometheus_text(prom) == []

    # Claim 1: exporting reads telemetry, never mutates it.
    assert system.observability_report() == before

    span_events = sum(
        1 for event in trace_wall["traceEvents"] if event["ph"] == "X"
    )
    emit(
        "E13",
        f"telemetry export cost ({SITE_COUNT} sites x {ROWS_PER_SITE} rows, "
        f"{QUERY_ROUNDS} queries)",
        ["artifact", "items", "bytes", "export_ms"],
        [
            ("trace_wall.json", span_events, len(json.dumps(trace_wall)), wall_ms),
            ("trace_sim.json", span_events, len(json.dumps(trace_sim)), sim_ms),
            ("metrics.prom", prom.count("\n"), len(prom), prom_ms),
            ("metrics.json", len(json.loads(mjson)["counters"]), len(mjson), json_ms),
            ("events.jsonl", len(system.obs.events), len(jsonl), events_ms),
        ],
    )
    # Sanity floor: a telemetry-heavy run actually produced telemetry.
    assert span_events > 0
    assert len(system.obs.events) >= QUERY_ROUNDS

    benchmark(lambda: spans_to_chrome_trace(system.tracer, clock="wall"))


def test_e13_bundle_round_trip(benchmark):
    """Claim 3: dump → reload of a faulty run loses nothing."""
    system = build_demo_system()
    bundle_dir = RESULTS_DIR / "e13_bundle"
    shutil.rmtree(bundle_dir, ignore_errors=True)

    _, dump_ms = _timed(lambda: system.dump_debug_bundle(bundle_dir))
    bundle, load_ms = _timed(lambda: load_debug_bundle(bundle_dir))

    # Byte-for-byte report, lossless events and metrics, valid schemas.
    assert bundle.report == system.observability_report()
    assert bundle.metrics == json.loads(json.dumps(system.metrics.snapshot()))
    assert [e.to_json() for e in bundle.events] == [
        e.to_json() for e in system.obs.events.snapshot()
    ]
    assert bundle.validate() == []

    # The faulty run's story is all on the record.
    states = {e.fields["state"] for e in bundle.events if e.type == "2pc"}
    assert {"BEGIN", "PREPARED", "COMMITTED", "ABORTED", "IN-DOUBT", "RECOVERED"} <= states
    assert any(e.type == "wal.park" for e in bundle.events)
    assert any(e.type == "wal.drain" for e in bundle.events)
    assert any(e.type == "fault.drop" for e in bundle.events)

    sizes = sorted(
        (name, (bundle_dir / name).stat().st_size)
        for name in bundle.manifest["files"]
    )
    emit(
        "E13_BUNDLE",
        f"debug bundle round trip (dump {dump_ms:.3f}ms, load {load_ms:.3f}ms)",
        ["file", "bytes"],
        sizes,
    )
    print(f"bundle kept at {bundle_dir}", flush=True)

    benchmark(lambda: load_debug_bundle(bundle_dir).validate())
