"""E1 — Global-query correctness: decomposition returns merged-DB answers.

Claim validated (paper §2): global SQL queries over integrated relations
behave as if one merged database existed.  We check that (a) every optimizer
returns identical answers and (b) the answers match an oracle computed by
loading both campuses' data into ONE local engine and running the
equivalent single-database query.
"""

from conftest import emit

from repro.engine import LocalEngine
from repro.storage import Catalog
from repro.workloads import build_university_system

#: (label, federated SQL, single-DB SQL over the merged table)
QUERY_PAIRS = [
    (
        "count",
        "SELECT COUNT(*) FROM student",
        "SELECT COUNT(*) FROM merged_student",
    ),
    (
        "filter",
        "SELECT name FROM student WHERE gpa > 3.5 ORDER BY name",
        "SELECT name FROM merged_student WHERE gpa > 3.5 ORDER BY name",
    ),
    (
        "group",
        "SELECT major, COUNT(*) FROM student GROUP BY major ORDER BY major",
        "SELECT major, COUNT(*) FROM merged_student GROUP BY major ORDER BY major",
    ),
    (
        "agg",
        "SELECT campus, AVG(gpa) FROM student GROUP BY campus ORDER BY campus",
        "SELECT campus, AVG(gpa) FROM merged_student GROUP BY campus ORDER BY campus",
    ),
    (
        "topk",
        "SELECT name, gpa FROM student ORDER BY gpa DESC, name LIMIT 10",
        "SELECT name, gpa FROM merged_student ORDER BY gpa DESC, name LIMIT 10",
    ),
    (
        "having",
        "SELECT major FROM student GROUP BY major HAVING COUNT(*) > 20 "
        "ORDER BY major",
        "SELECT major FROM merged_student GROUP BY major HAVING COUNT(*) > 20 "
        "ORDER BY major",
    ),
    (
        "distinct",
        "SELECT DISTINCT major FROM student ORDER BY major",
        "SELECT DISTINCT major FROM merged_student ORDER BY major",
    ),
]


def build_oracle_engine(system) -> LocalEngine:
    """One local engine holding the union of both campuses' students."""
    engine = LocalEngine(Catalog("merged"))
    engine.execute(
        "CREATE TABLE merged_student (sid INTEGER, name VARCHAR(40), "
        "gpa FLOAT, major VARCHAR(10), campus VARCHAR(20))"
    )
    result = system.query(
        "university", "SELECT sid, name, gpa, major, campus FROM student"
    )
    for row in result.rows:
        values = [row[0], row[1], float(row[2]) if row[2] is not None else None,
                  row[3], row[4]]
        engine.execute(
            "INSERT INTO merged_student VALUES (?, ?, ?, ?, ?)", values
        )
    return engine


def normalise(rows):
    return [tuple(_norm(v) for v in row) for row in rows]


def _norm(value):
    if isinstance(value, float):
        return round(value, 6)
    try:
        return round(float(value), 6) if hasattr(value, "quantize") else value
    except Exception:  # pragma: no cover
        return value


def test_e1_correctness(benchmark):
    system = build_university_system(
        students_per_campus=120, courses_per_campus=20, staff_count=30, seed=13
    )
    oracle = build_oracle_engine(system)

    rows = []
    all_ok = True
    for label, fed_sql, local_sql in QUERY_PAIRS:
        expected = normalise(oracle.execute(local_sql).rows)
        verdicts = []
        for optimizer in ("simple", "cost", "cost-nosemijoin"):
            got = normalise(
                system.query("university", fed_sql, optimizer=optimizer).rows
            )
            verdicts.append(got == expected)
        ok = all(verdicts)
        all_ok = all_ok and ok
        rows.append((label, len(expected), "PASS" if ok else "FAIL"))

    emit(
        "E1",
        "federated answers vs merged-database oracle (3 optimizers each)",
        ["query", "rows", "verdict"],
        rows,
    )
    assert all_ok

    # Wall-clock: the full 7-query federated suite under the cost optimizer.
    def run_suite():
        for _, fed_sql, _ in QUERY_PAIRS:
            system.query("university", fed_sql, optimizer="cost")

    benchmark(run_suite)
