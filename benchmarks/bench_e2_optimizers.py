"""E2 — Simple vs. full-fledged optimization.

Claim validated (paper §2): the initially-implemented *simple* strategy is
a baseline; the cost-based optimizer (selection/projection pushdown) wins on
distributed queries, with the gap growing as predicates get more selective
and relations get bigger.
"""

import pytest
from conftest import emit

from repro.workloads import build_two_site_join

SELECTIVITIES = [0.01, 0.1, 0.5, 1.0]
SIZES = [200, 1000, 3000]


def test_e2_selectivity_sweep(benchmark):
    system = build_two_site_join(2000, 2000, match_fraction=0.5, seed=21)
    rows = []
    for selectivity in SELECTIVITIES:
        sql = f"SELECT k, pad FROM lhs WHERE flt < {selectivity}"
        simple = system.query("synth", sql, optimizer="simple")
        cost = system.query("synth", sql, optimizer="cost")
        assert sorted(simple.rows) == sorted(cost.rows)
        rows.append(
            (
                selectivity,
                simple.bytes_shipped,
                cost.bytes_shipped,
                simple.elapsed_s * 1000,
                cost.elapsed_s * 1000,
                simple.elapsed_s / max(cost.elapsed_s, 1e-9),
            )
        )
    emit(
        "E2a",
        "optimizer vs selectivity (2000-row relation, bytes + simulated ms)",
        ["sel", "simple_B", "cost_B", "simple_ms", "cost_ms", "speedup"],
        rows,
    )
    # Shape assertions: cost never worse; gap grows as selectivity shrinks.
    speedups = [row[5] for row in rows]
    assert all(s >= 0.99 for s in speedups)
    assert speedups[0] > speedups[-1]

    benchmark(
        lambda: system.query(
            "synth", "SELECT k, pad FROM lhs WHERE flt < 0.1", optimizer="cost"
        )
    )


def test_e2_size_sweep(benchmark):
    rows = []
    for size in SIZES:
        system = build_two_site_join(size, size, match_fraction=0.5, seed=22)
        sql = "SELECT k, pad FROM lhs WHERE flt < 0.05"
        simple = system.query("synth", sql, optimizer="simple")
        cost = system.query("synth", sql, optimizer="cost")
        assert sorted(simple.rows) == sorted(cost.rows)
        rows.append(
            (
                size,
                simple.bytes_shipped,
                cost.bytes_shipped,
                simple.elapsed_s * 1000,
                cost.elapsed_s * 1000,
                simple.elapsed_s / max(cost.elapsed_s, 1e-9),
            )
        )
    emit(
        "E2b",
        "optimizer vs relation size (selectivity 0.05)",
        ["rows", "simple_B", "cost_B", "simple_ms", "cost_ms", "speedup"],
        rows,
    )
    # The absolute saving grows with size.
    savings = [row[1] - row[2] for row in rows]
    assert savings == sorted(savings)

    small = build_two_site_join(200, 200, match_fraction=0.5, seed=22)
    benchmark(
        lambda: small.query(
            "synth", "SELECT k, pad FROM lhs WHERE flt < 0.05", optimizer="cost"
        )
    )


def test_e2_estimates_track_measurements(benchmark):
    """The cost model's estimate and the measured virtual time correlate."""
    system = build_two_site_join(1500, 1500, match_fraction=0.5, seed=23)
    processor = system.processor("synth")
    benchmark.pedantic(
        lambda: processor.plan("SELECT k FROM lhs WHERE flt < 0.1", "cost"),
        rounds=3,
        iterations=1,
    )
    pairs = []
    for selectivity in SELECTIVITIES:
        sql = f"SELECT k, pad FROM lhs WHERE flt < {selectivity}"
        plan = processor.plan(sql, "cost")
        measured = processor.executor.execute(plan)
        pairs.append((plan.estimated_cost_s, measured.elapsed_s))
    # Estimates must be monotone in the same direction as measurements.
    estimated_order = sorted(range(len(pairs)), key=lambda i: pairs[i][0])
    measured_order = sorted(range(len(pairs)), key=lambda i: pairs[i][1])
    assert estimated_order == measured_order
    for estimated, measured in pairs:
        assert estimated == pytest.approx(measured, rel=1.0)
