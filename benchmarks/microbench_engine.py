"""Standalone engine microbenchmark: rows/sec per operator, both paths.

Times seq-scan / filter / hash-join / hash-aggregate on the row-at-a-time
and the vectorized engine over one seeded table and reports rows/second
for each.  Also the before/after harness for expression-compilation fixes
(ordinal resolution is hoisted to operator open; see
``repro.engine.expressions``): any per-row regression in either path shows
up directly in the rows/s column.

Run:  PYTHONPATH=src python benchmarks/microbench_engine.py [rows]
"""

from __future__ import annotations

import random
import sys
import time

from repro.engine import LocalEngine
from repro.storage import Catalog

CASES = [
    ("seq scan", "SELECT grp, val FROM fact"),
    ("filter", "SELECT id, val FROM fact WHERE val < 0.2 AND grp > 5"),
    (
        "hash join",
        "SELECT d.label, f.val FROM fact f JOIN dim d ON f.grp = d.gid "
        "WHERE f.val < 0.5",
    ),
    (
        "aggregate",
        "SELECT grp, COUNT(*), SUM(val), AVG(val), MIN(val), MAX(val) "
        "FROM fact GROUP BY grp",
    ),
]


def build_engine(rows: int) -> LocalEngine:
    engine = LocalEngine(Catalog("micro"))
    engine.execute(
        "CREATE TABLE fact (id INTEGER PRIMARY KEY, grp INTEGER, "
        "val FLOAT, pad VARCHAR(16))"
    )
    engine.execute(
        "CREATE TABLE dim (gid INTEGER PRIMARY KEY, label VARCHAR(12))"
    )
    rng = random.Random(20)
    fact = engine.catalog.get_table("fact")
    for i in range(rows):
        fact.insert((i, rng.randrange(64), rng.random(), "x" * 16))
    dim = engine.catalog.get_table("dim")
    for g in range(64):
        dim.insert((g, f"G{g}"))
    return engine


def best_of(engine: LocalEngine, sql: str, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        engine.execute(sql)
        best = min(best, time.perf_counter() - start)
    return best


def main() -> int:
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 30_000
    engine = build_engine(rows)
    print(f"# engine microbench: {rows} rows, best of 3")
    print(f"{'operator':<12} {'row rows/s':>14} {'vec rows/s':>14} "
          f"{'speedup':>8}")
    for label, sql in CASES:
        engine.vectorized = False
        row_s = best_of(engine, sql)
        engine.vectorized = True
        vec_s = best_of(engine, sql)
        engine.vectorized = False
        print(
            f"{label:<12} {rows / row_s:>14,.0f} {rows / vec_s:>14,.0f} "
            f"{row_s / vec_s:>7.2f}x"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
