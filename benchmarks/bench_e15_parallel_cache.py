"""E15 — Federation performance layer: parallel fetches + caches.

Claims validated:

1. **Parallel fetch speedup.** With ``Network(wall_delay_factor=...)``
   modelling the real I/O wait a federation thread spends blocked on a
   gateway, threaded fetch execution (``parallel_fetches=N``) finishes a
   multi-site fan-out query at least **2× faster wall-clock** than
   sequential execution (``parallel_fetches=1``) on a 6-site federation.
2. **Determinism.** The speedup is *wall-clock only*: simulated elapsed
   seconds, bytes shipped, message counts, and result rows are
   bit-identical between parallel and sequential runs (the results file
   carries a ``sim_identical=yes`` marker CI greps for).
3. **Fragment cache.** Re-running a read-only query serves every fragment
   from the federation-site cache: zero new network messages.  Committed
   DML through a gateway invalidates exactly the written export, and the
   next read fetches fresh rows.
4. **Plan cache.** Repeated planning of the same SQL hits the compiled
   plan LRU, skipping parse → expand → optimize.
"""

import time

from conftest import emit

from repro.net import Network
from repro.workloads import build_bank_sites, build_partitioned_sites

SITE_COUNT = 6
ROWS_PER_SITE = 150
WALL_DELAY_FACTOR = 20.0
SQL_SCAN = "SELECT k, grp, val FROM measurements WHERE grp < 12"
SQL_AGG = (
    "SELECT grp, COUNT(*), SUM(val) FROM measurements "
    "GROUP BY grp ORDER BY grp"
)


def _build(parallel_fetches, wall_delay=True, fragment_cache=False):
    network = Network(
        wall_delay_factor=WALL_DELAY_FACTOR if wall_delay else 0.0
    )
    return build_partitioned_sites(
        SITE_COUNT,
        ROWS_PER_SITE,
        seed=15,
        network=network,
        parallel_fetches=parallel_fetches,
        fragment_cache=fragment_cache,
    )


def test_e15_parallel_speedup(benchmark):
    sequential = _build(parallel_fetches=1)
    parallel = _build(parallel_fetches=SITE_COUNT)

    # warm up plan caches / stats so the timed region is fetch-dominated
    seq_result = sequential.query("synth", SQL_SCAN)
    par_result = parallel.query("synth", SQL_SCAN)

    start = time.perf_counter()
    seq_result = sequential.query("synth", SQL_SCAN)
    seq_wall = time.perf_counter() - start
    start = time.perf_counter()
    par_result = parallel.query("synth", SQL_SCAN)
    par_wall = time.perf_counter() - start
    speedup = seq_wall / par_wall

    # Claim 2: bit-identical simulated accounting and rows — parallelism
    # is an optimisation, not a semantics change.
    sim_identical = (
        par_result.rows == seq_result.rows
        and par_result.elapsed_s == seq_result.elapsed_s
        and par_result.bytes_shipped == seq_result.bytes_shipped
        and par_result.trace.message_count == seq_result.trace.message_count
        and par_result.fetched_rows == seq_result.fetched_rows
    )

    emit(
        "E15",
        f"parallel fetches on a {SITE_COUNT}-site fan-out "
        f"({ROWS_PER_SITE} rows/site, wall_delay_factor="
        f"{WALL_DELAY_FACTOR:g}) — sim_identical="
        f"{'yes' if sim_identical else 'NO-DIVERGED'}",
        ["mode", "wall_ms", "sim_ms", "bytes", "msgs", "speedup"],
        [
            (
                "sequential",
                seq_wall * 1000,
                seq_result.elapsed_s * 1000,
                seq_result.bytes_shipped,
                seq_result.trace.message_count,
                1.0,
            ),
            (
                f"parallel x{SITE_COUNT}",
                par_wall * 1000,
                par_result.elapsed_s * 1000,
                par_result.bytes_shipped,
                par_result.trace.message_count,
                speedup,
            ),
        ],
    )

    assert sim_identical, (
        "parallel execution diverged from sequential simulated accounting: "
        f"sim {par_result.elapsed_s} vs {seq_result.elapsed_s}, "
        f"bytes {par_result.bytes_shipped} vs {seq_result.bytes_shipped}"
    )
    assert speedup >= 2.0, (
        f"parallel fetches only {speedup:.2f}x faster "
        f"(seq={seq_wall * 1000:.1f}ms, par={par_wall * 1000:.1f}ms)"
    )

    sequential.close()
    with parallel:
        benchmark(lambda: parallel.query("synth", SQL_AGG))


def test_e15_caches(benchmark):
    # No wall delay here: cache behaviour is about message counts.
    with build_bank_sites(4, 50, query_timeout=5.0) as bank:
        sql = "SELECT acct, balance FROM accounts"

        cold = bank.query("bank", sql)
        messages_cold = cold.trace.message_count
        network_after_cold = bank.network.total_messages

        warm = bank.query("bank", sql)
        messages_warm = warm.trace.message_count
        assert warm.rows == cold.rows
        # Claim 3: every fragment served from cache → zero new messages.
        assert messages_warm == 0
        assert bank.network.total_messages == network_after_cold
        hits = bank.metrics.counter_total("fragcache.hit")
        assert hits == 4

        # Committed DML invalidates: the next read is fresh.
        txn = bank.begin_transaction()
        txn.execute(
            "b0", "UPDATE account SET balance = 42 WHERE acct = 0"
        )
        txn.commit()
        fresh = bank.query("bank", sql)
        assert fresh.trace.message_count > 0  # b0 refetched
        assert dict(fresh.rows)[0] == 42.0

        # Claim 4: the warm rerun hit the plan cache; the post-DML rerun
        # correctly missed (committed writes move the statistics version,
        # which is part of the plan-cache key).
        plan_hits = bank.metrics.counter_total("plancache.hit")
        plan_misses = bank.metrics.counter_total("plancache.miss")
        assert plan_hits == 1 and plan_misses == 2

        emit(
            "E15_CACHES",
            "fragment + plan cache effect (4-site bank, repeated scan)",
            ["phase", "trace_msgs", "fragcache_hits", "plancache_hits"],
            [
                ("cold", messages_cold, 0, 0),
                ("warm", messages_warm, int(hits), int(plan_hits)),
                (
                    "after-DML",
                    fresh.trace.message_count,
                    int(bank.metrics.counter_total("fragcache.hit")),
                    int(bank.metrics.counter_total("plancache.hit")),
                ),
            ],
        )

        benchmark(lambda: bank.query("bank", sql))
