"""E11 — Fault-injection atomicity: 2PC decision delivery under message loss.

Claim hardened (paper §2): 2PC with presumed-abort coordinator logging keeps
global transactions *atomic* — not just in the failure-free run the other
experiments measure, but when the simulated network loses protocol messages
at any point (PREPARE, VOTE, COMMIT, ACK, ABORT) or a participant site
crashes outright.

Method: a three-branch transfer transaction is driven into every loss
scenario via the deterministic :class:`repro.net.FaultInjector`; after
phase-2 retry and (where needed) healing the network and running
``recover_in_doubt``, two invariants are asserted per scenario:

- **no stranded branch** — no participant stays PREPARED, and the global
  transaction never terminates in the PREPARING state
- **unanimous outcome** — every branch reaches the coordinator's durably
  logged decision (debit and credit are either both applied or both absent,
  and total balance is conserved)
"""

from conftest import emit

from repro.errors import TransactionAborted, TwoPhaseCommitError
from repro.txn import GlobalTxnState
from repro.workloads import build_bank_sites, total_balance

SITES = 3
ACCOUNTS = 4
INITIAL = SITES * ACCOUNTS * 1000.0

#: (label, drop rules for FaultInjector.drop_next, site to crash or None).
#: ``count=10**6`` models a participant unreachable for the whole protocol
#: (beyond any retry budget); ``count=1`` a single transient loss.
SCENARIOS = [
    ("no fault", [], None),
    ("prepare->b1 x1", [dict(destination="b1", purpose="prepare", count=1)], None),
    ("vote<-b1 x1", [dict(source="b1", purpose="vote", count=1)], None),
    ("commit->b1 x1", [dict(destination="b1", purpose="commit", count=1)], None),
    ("commit->b1 all", [dict(destination="b1", purpose="commit", count=10**6)], None),
    ("ack<-b1 x1", [dict(source="b1", purpose="ack", count=1)], None),
    (
        "abort->b1 all",
        [
            dict(destination="b1", purpose="prepare", count=1),
            dict(destination="b1", purpose="abort", count=10**6),
        ],
        None,
    ),
    ("crash b1", [], "b1"),
]


def run_scenario(label, rules, crash_site):
    system = build_bank_sites(SITES, ACCOUNTS, query_timeout=2.0)
    faults = system.inject_faults(seed=11)
    gtm = system.transactions

    txn = system.begin_transaction()
    txn.execute("b0", "UPDATE account SET balance = balance - 10 WHERE acct = 0")
    txn.execute("b1", "UPDATE account SET balance = balance + 10 WHERE acct = 4")
    txn.execute("b2", "UPDATE account SET balance = balance + 0 WHERE acct = 8")

    for rule in rules:
        faults.drop_next(**rule)
    if crash_site is not None:
        faults.crash_site(crash_site)

    outcome = "commit"
    try:
        txn.commit()
    except (TwoPhaseCommitError, TransactionAborted):
        outcome = "abort"

    parked = sum(len(sites) for sites in gtm.pending_deliveries.values())
    faults.clear()
    recovered = len(gtm.recover_in_doubt())

    # -- invariants ------------------------------------------------------
    assert txn.state is not GlobalTxnState.PREPARING, label
    for gateway in system.gateways.values():
        assert gateway.prepared_branches() == [], label
    assert gtm.wal.pending_deliveries() == {}, label
    debit = float(
        system.query("bank", "SELECT balance FROM accounts WHERE acct = 0").scalar()
    )
    credit = float(
        system.query("bank", "SELECT balance FROM accounts WHERE acct = 4").scalar()
    )
    decision = gtm.wal.coordinator_decisions().get(txn.global_id)
    if txn.state is GlobalTxnState.COMMITTED:
        assert (debit, credit) == (990.0, 1010.0), label
        assert decision in ("commit", None)  # None = one-phase (not here)
    else:
        assert (debit, credit) == (1000.0, 1000.0), label
        assert decision == "abort"
    assert total_balance(system) == INITIAL, label

    return (
        label,
        outcome,
        gtm.decision_retries,
        parked,
        recovered,
        "ok",
    )


def test_e11_decision_loss_matrix(benchmark):
    rows = [run_scenario(*scenario) for scenario in SCENARIOS]
    emit(
        "E11",
        "2PC atomicity under injected faults: every branch reaches the "
        "logged decision (3 sites, transfer txn)",
        ["fault", "outcome", "retries", "parked", "recovered", "atomic"],
        rows,
    )
    # Shape: transient single losses are absorbed by retry alone (nothing
    # parked); a participant unreachable all protocol long is parked exactly
    # once and resolved by exactly one recovery action.
    by_label = {row[0]: row for row in rows}
    assert by_label["no fault"][2:5] == (0, 0, 0)
    assert by_label["commit->b1 x1"][3] == 0 and by_label["commit->b1 x1"][2] >= 1
    assert by_label["ack<-b1 x1"][3] == 0
    assert by_label["commit->b1 all"][3] == 1
    assert by_label["commit->b1 all"][4] == 1
    assert by_label["abort->b1 all"][3] == 1
    assert by_label["crash b1"][1] == "abort"

    benchmark.pedantic(
        run_scenario,
        args=("commit->b1 all", [dict(destination="b1", purpose="commit", count=10**6)], None),
        rounds=3,
        iterations=1,
    )
