"""E8 — Federation scale-out: 1–8 component DBMSs.

Claim validated (paper §1/§2): MYRIAD integrates *multiple* independently
developed databases; fragment shipping is issued concurrently, so global
latency grows sub-linearly in the site count while total bytes grow
linearly.
"""

from conftest import emit

from repro.workloads import build_partitioned_sites

SITE_COUNTS = [1, 2, 4, 8]
ROWS_PER_SITE = 400

SQL_AGG = "SELECT grp, COUNT(*), AVG(val) FROM measurements GROUP BY grp ORDER BY grp"
SQL_FILTER = "SELECT k FROM measurements WHERE val < 0.05"


def test_e8_scaleout(benchmark):
    rows = []
    for site_count in SITE_COUNTS:
        system = build_partitioned_sites(site_count, ROWS_PER_SITE, seed=81)
        result = system.query("synth", SQL_AGG)
        assert len(result.rows) == 16  # all groups present
        total = system.query("synth", "SELECT COUNT(*) FROM measurements")
        assert total.scalar() == site_count * ROWS_PER_SITE
        rows.append(
            (
                site_count,
                result.trace.message_count,
                result.bytes_shipped,
                result.elapsed_s * 1000,
            )
        )
    emit(
        "E8",
        f"scale-out: global aggregate over {ROWS_PER_SITE} rows/site",
        ["sites", "msgs", "bytes", "sim_ms"],
        rows,
    )
    # Messages and bytes grow linearly with the site count...
    assert rows[-1][1] == rows[0][1] * SITE_COUNTS[-1]
    # ...but latency grows sub-linearly (parallel shipping).
    latency_ratio = rows[-1][3] / rows[0][3]
    assert latency_ratio < SITE_COUNTS[-1] / 2

    system = build_partitioned_sites(4, ROWS_PER_SITE, seed=81)
    benchmark(lambda: system.query("synth", SQL_AGG))


def test_e8_selective_filter_pushdown_scales(benchmark):
    """With pushdown, shipped bytes stay tiny regardless of site count."""
    rows = []
    for site_count in (2, 6):
        system = build_partitioned_sites(site_count, ROWS_PER_SITE, seed=82)
        simple = system.query("synth", SQL_FILTER, optimizer="simple")
        cost = system.query("synth", SQL_FILTER, optimizer="cost")
        assert sorted(simple.rows) == sorted(cost.rows)
        rows.append(
            (site_count, simple.bytes_shipped, cost.bytes_shipped)
        )
    emit(
        "E8b",
        "bytes shipped with/without pushdown as sites scale",
        ["sites", "simple_bytes", "cost_bytes"],
        rows,
    )
    for _, simple_bytes, cost_bytes in rows:
        assert cost_bytes < simple_bytes / 5

    system = build_partitioned_sites(4, ROWS_PER_SITE, seed=82)
    benchmark(lambda: system.query("synth", SQL_FILTER, optimizer="cost"))
