"""E16 — Concurrent serving layer + MVCC snapshot reads.

Claims validated:

1. **Scale.** A :class:`~repro.server.FederationServer` sustains 100+
   concurrent client sessions (``E16_SESSIONS`` env var; CI runs a reduced
   count) issuing a mixed read/write workload against a 2-site bank.
2. **Snapshot consistency.** Every read — autocommit or ``BEGIN READ
   ONLY`` — observes the conserved total balance: writers move money
   between accounts *within one site per transaction*, so any per-DBMS
   snapshot sums to the invariant.  Zero anomalous sums allowed.
3. **No read-write deadlock aborts.** MVCC readers acquire no table locks,
   so no reader is ever timed out or chosen as a deadlock victim.  The
   run fails on a single reader abort.
4. **Throughput.** Read-only QPS under concurrent writers beats the pure
   2PL baseline (the same system built with ``mvcc_reads=False``), where
   readers convoy behind writer X locks.

The results table lands in ``benchmarks/results/e16_sessions.txt`` with an
``invariants=ok`` marker CI greps for, plus p50/p95/p99 read latencies.
"""

import os
import threading
import time

from conftest import emit

from repro.workloads import build_bank_sites, total_balance

SESSIONS = int(os.environ.get("E16_SESSIONS", "100"))
READS_PER_SESSION = int(os.environ.get("E16_OPS", "6"))
WRITE_TXNS = 6
WRITE_HOLD_S = 0.01  # lock hold time per writer txn (models think time)
ACCOUNTS_PER_SITE = 50
SITES = 2
SUM_SQL = "SELECT SUM(balance) FROM accounts"


def _percentile(samples: list[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(int(len(ordered) * fraction), len(ordered) - 1)
    return ordered[index]


def _build(mvcc_reads: bool):
    system = build_bank_sites(
        SITES,
        ACCOUNTS_PER_SITE,
        initial_balance=100.0,
        query_timeout=30.0,
        mvcc_reads=mvcc_reads,
        # Force every read to the gateways: a cached fragment would dodge
        # both the snapshot and the 2PL lock, voiding the comparison.
        fragment_cache=False,
    )
    fed = system.federation("bank")
    for index in range(SITES):
        fed.define_relation(
            f"accounts_b{index}",
            f"SELECT acct, balance FROM b{index}.account",
        )
    return system


def _run_storm(system, session_count: int) -> dict:
    """Drive the mixed workload; returns metrics + invariant violations."""
    writer_count = max(2, session_count // 5)
    reader_count = session_count - writer_count
    server = system.create_server(max_sessions=session_count + 4)
    initial_total = total_balance(system)

    latencies: list[float] = []
    latency_lock = threading.Lock()
    bad_sums: list[float] = []
    reader_aborts: list[Exception] = []
    writer_errors: list[Exception] = []
    barrier = threading.Barrier(session_count + 1)

    def reader(index: int):
        session = server.connect()
        read_only = index % 2 == 0
        try:
            barrier.wait()
            with session:
                local: list[float] = []
                for _ in range(READS_PER_SESSION):
                    start = time.perf_counter()
                    if read_only:
                        session.execute("bank", "BEGIN READ ONLY")
                    total = float(session.query("bank", SUM_SQL).scalar())
                    if read_only:
                        session.execute("bank", "COMMIT")
                    local.append(time.perf_counter() - start)
                    if total != initial_total:
                        bad_sums.append(total)
                with latency_lock:
                    latencies.extend(local)
        except Exception as error:
            reader_aborts.append(error)

    def writer(seed: int):
        session = server.connect()
        try:
            barrier.wait()
            with session:
                for i in range(WRITE_TXNS):
                    site = (seed + i) % SITES
                    a = site * ACCOUNTS_PER_SITE + (seed % ACCOUNTS_PER_SITE)
                    b = site * ACCOUNTS_PER_SITE + (
                        (seed + 13) % ACCOUNTS_PER_SITE
                    )
                    session.begin()
                    session.execute(
                        "bank",
                        f"UPDATE accounts_b{site} SET balance = "
                        f"balance - 1 WHERE acct = {a}",
                    )
                    time.sleep(WRITE_HOLD_S)
                    session.execute(
                        "bank",
                        f"UPDATE accounts_b{site} SET balance = "
                        f"balance + 1 WHERE acct = {b}",
                    )
                    session.commit()
        except Exception as error:
            writer_errors.append(error)

    reader_threads = [
        threading.Thread(target=reader, args=(index,))
        for index in range(reader_count)
    ]
    writer_threads = [
        threading.Thread(target=writer, args=(index,))
        for index in range(writer_count)
    ]
    for thread in reader_threads + writer_threads:
        thread.start()
    start = time.perf_counter()
    barrier.wait()
    for thread in reader_threads:
        thread.join()
    # Read QPS is measured over the readers' own wall: under 2PL they
    # convoy behind writer X locks; under MVCC they never wait.
    reader_wall = time.perf_counter() - start
    for thread in writer_threads:
        thread.join()
    wall = time.perf_counter() - start

    stats = server.stats()
    locks_left = sum(
        len(entries) for entries in system.lock_table().values()
    )
    return {
        "sessions": session_count,
        "readers": reader_count,
        "writers": writer_count,
        "reads": reader_count * READS_PER_SESSION,
        "wall_s": wall,
        "read_qps": (reader_count * READS_PER_SESSION) / reader_wall,
        "p50_ms": _percentile(latencies, 0.50) * 1000,
        "p95_ms": _percentile(latencies, 0.95) * 1000,
        "p99_ms": _percentile(latencies, 0.99) * 1000,
        "bad_sums": len(bad_sums),
        "reader_aborts": len(reader_aborts),
        "writer_errors": len(writer_errors),
        "locks_left": locks_left,
        "peak_sessions": stats["peak"],
        "commits_expected": writer_count * WRITE_TXNS,
        "balance_ok": total_balance(system) == initial_total,
    }


def test_e16_sessions(benchmark):
    mvcc_system = _build(mvcc_reads=True)
    mvcc = _run_storm(mvcc_system, SESSIONS)

    baseline_system = _build(mvcc_reads=False)
    baseline = _run_storm(baseline_system, SESSIONS)

    invariants_ok = (
        mvcc["bad_sums"] == 0
        and mvcc["reader_aborts"] == 0
        and mvcc["writer_errors"] == 0
        and mvcc["locks_left"] == 0
        and mvcc["balance_ok"]
        and mvcc["peak_sessions"] >= SESSIONS
        and mvcc["read_qps"] > baseline["read_qps"]
    )

    def row(mode, run):
        return (
            mode,
            run["sessions"],
            run["reads"],
            run["read_qps"],
            run["p50_ms"],
            run["p95_ms"],
            run["p99_ms"],
            run["bad_sums"],
            run["reader_aborts"],
            run["locks_left"],
        )

    emit(
        "E16_SESSIONS",
        f"{SESSIONS} concurrent sessions, {READS_PER_SESSION} reads each, "
        f"mixed writers ({SITES}-site bank) — "
        f"invariants={'ok' if invariants_ok else 'VIOLATED'}",
        [
            "mode",
            "sessions",
            "reads",
            "read_qps",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "bad_sums",
            "rd_aborts",
            "locks_left",
        ],
        [row("mvcc", mvcc), row("2pl-baseline", baseline)],
    )

    # Claim 2: snapshot consistency — every read saw the conserved total.
    assert mvcc["bad_sums"] == 0, f"{mvcc['bad_sums']} inconsistent sums"
    # Claim 3: zero read-write deadlock aborts (readers take no locks).
    assert mvcc["reader_aborts"] == 0
    assert mvcc["writer_errors"] == 0
    # Claim 1: the pool really held the full session count at once.
    assert mvcc["peak_sessions"] >= SESSIONS
    # Bookkeeping: no orphaned locks, money conserved.
    assert mvcc["locks_left"] == 0
    assert mvcc["balance_ok"]
    # Claim 4: MVCC read throughput beats the 2PL-read baseline.
    assert mvcc["read_qps"] > baseline["read_qps"], (
        f"mvcc {mvcc['read_qps']:.0f} qps <= "
        f"baseline {baseline['read_qps']:.0f} qps"
    )

    baseline_system.close()
    with mvcc_system:
        benchmark(lambda: mvcc_system.query("bank", SUM_SQL))
