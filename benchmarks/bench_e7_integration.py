"""E7 — Integration-function / merge scaling.

Claim validated (paper §2): integrated relations built with relational
operations *and user-defined integration functions* are practical — the
cost of materialising them grows linearly in the source rows, for both the
union-merge (horizontal) and outer-join-merge (vertical, with conflict
resolution) shapes.
"""

from conftest import emit

from repro.myriad import MyriadSystem
from repro.schema import join_merge, union_merge

SIZES = [200, 800, 2000]


def build(rows: int) -> MyriadSystem:
    system = MyriadSystem()
    a = system.add_postgres("a")
    b = system.add_oracle("b")
    a.dbms.execute(
        "CREATE TABLE t (k INTEGER PRIMARY KEY, v FLOAT, s VARCHAR(12))"
    )
    b.dbms.execute(
        "CREATE TABLE u (k INTEGER PRIMARY KEY, v NUMBER, s VARCHAR2(12))"
    )
    for owner, table in ((a, "t"), (b, "u")):
        session = owner.dbms.connect()
        session.begin()
        for i in range(rows):
            session.execute(
                f"INSERT INTO {table} VALUES (?, ?, ?)",
                [i, float(i % 97), f"s{i % 13}"],
            )
        session.commit()
    a.export_table("t", "rel", ["k", "v", "s"])
    b.export_table("u", "rel", ["k", "v", "s"])

    fed = system.create_federation("f")
    fed.register_function(
        "SCALE100", lambda v: None if v is None else float(v) * 100.0
    )
    fed.add_relation(
        union_merge(
            "horizontal",
            [("a", "rel", ["k", "v", "s"]), ("b", "rel", ["k", "v", "s"])],
            source_tag_column="src",
        )
    )
    fed.add_relation(
        join_merge(
            "vertical",
            left=("a", "rel"),
            right=("b", "rel"),
            on=[("k", "k")],
            attributes={
                "k": ("key", 0),
                "v": ("resolve", "AVG_CONFLICT", "v", "v"),
                "s": ("resolve", "PREFER_FIRST", "s", "s"),
            },
        )
    )
    fed.define_relation(
        "converted", "SELECT k, SCALE100(v) AS v100 FROM a.rel"
    )
    return system


def test_e7_merge_scaling(benchmark):
    rows = []
    for size in SIZES:
        system = build(size)
        horizontal = system.query(
            "f", "SELECT COUNT(*), SUM(v) FROM horizontal"
        )
        vertical = system.query("f", "SELECT COUNT(*), SUM(v) FROM vertical")
        converted = system.query("f", "SELECT SUM(v100) FROM converted")
        assert horizontal.rows[0][0] == 2 * size
        assert vertical.rows[0][0] == size  # same keys both sides
        assert converted.scalar() is not None
        rows.append(
            (
                size,
                horizontal.elapsed_s * 1000,
                vertical.elapsed_s * 1000,
                converted.elapsed_s * 1000,
            )
        )
    emit(
        "E7",
        "materialisation cost vs source rows (simulated ms)",
        ["rows/source", "union_ms", "outerjoin_ms", "udf_ms"],
        rows,
    )
    # Linearity check: time ratio tracks the size ratio within 2x slack.
    ratio = rows[-1][1] / rows[0][1]
    size_ratio = SIZES[-1] / SIZES[0]
    assert ratio < size_ratio * 2

    system = build(500)
    benchmark(
        lambda: system.query("f", "SELECT COUNT(*), SUM(v) FROM vertical")
    )


def test_e7_resolver_semantics_at_scale(benchmark):
    """AVG_CONFLICT really averages both sources on every row."""
    system = build(300)
    result = system.query(
        "f",
        "SELECT COUNT(*) FROM vertical v JOIN horizontal h ON v.k = h.k "
        "WHERE h.src = 'a' AND v.v <> h.v",
    )
    # both sources store identical v, so the average equals the source and
    # no row differs
    assert result.scalar() == 0
    benchmark(
        lambda: system.query("f", "SELECT COUNT(*) FROM vertical").scalar()
    )
