"""E12 — Observability: tracing/metrics overhead and EXPLAIN ANALYZE.

Claims validated:

1. The observability layer is *virtually free*: spans and metrics record
   wall-clock measurements only — the simulated network cost of a query is
   bit-identical with observability on and off.
2. It is *actually cheap*: on the E8 scale-out workload, full tracing +
   metrics adds **< 5 %** real wall-clock overhead versus a system built
   with ``observability=False``.
3. The collected telemetry is useful: the rendered metrics report and an
   ``EXPLAIN ANALYZE`` of a cross-site join are emitted as artifacts.
"""

import time

from conftest import RESULTS_DIR, emit

from repro.workloads import build_partitioned_sites, build_two_site_join

SITE_COUNT = 4
ROWS_PER_SITE = 400
SQL_AGG = (
    "SELECT grp, COUNT(*), AVG(val) FROM measurements "
    "GROUP BY grp ORDER BY grp"
)
SQL_FILTER = "SELECT k FROM measurements WHERE val < 0.05"

#: Overhead measurement: best-of-BATCHES batches of BATCH_QUERIES queries,
#: alternating between the two systems so scheduler noise hits both alike.
BATCHES = 7
BATCH_QUERIES = 3


def _build(observability: bool):
    return build_partitioned_sites(
        SITE_COUNT, ROWS_PER_SITE, seed=81, observability=observability
    )


def _batch_seconds(system) -> float:
    start = time.perf_counter()
    for _ in range(BATCH_QUERIES):
        system.query("synth", SQL_AGG)
    return time.perf_counter() - start


def test_e12_overhead(benchmark):
    enabled = _build(observability=True)
    disabled = _build(observability=False)

    # Claim 1: identical results and identical *simulated* cost — the
    # observability layer adds zero virtual seconds, bytes, or messages.
    result_on = enabled.query("synth", SQL_AGG)
    result_off = disabled.query("synth", SQL_AGG)
    assert result_on.rows == result_off.rows
    assert result_on.elapsed_s == result_off.elapsed_s
    assert result_on.bytes_shipped == result_off.bytes_shipped
    assert result_on.trace.message_count == result_off.trace.message_count

    # Claim 2: < 5 % wall-clock overhead, best-of-batches (alternating so
    # transient machine noise cannot bias one side).
    on_times, off_times = [], []
    for _ in range(BATCHES):
        on_times.append(_batch_seconds(enabled))
        off_times.append(_batch_seconds(disabled))
    best_on, best_off = min(on_times), min(off_times)
    overhead = best_on / best_off - 1.0

    emit(
        "E12",
        f"observability overhead on the E8 workload "
        f"({SITE_COUNT} sites x {ROWS_PER_SITE} rows)",
        ["mode", "best_batch_ms", "sim_ms", "overhead_pct"],
        [
            ("off", best_off * 1000, result_off.elapsed_s * 1000, 0.0),
            (
                "on",
                best_on * 1000,
                result_on.elapsed_s * 1000,
                overhead * 100,
            ),
        ],
    )
    assert overhead < 0.05, (
        f"observability overhead {overhead:.1%} exceeds the 5% budget "
        f"(on={best_on * 1000:.2f}ms, off={best_off * 1000:.2f}ms)"
    )

    benchmark(lambda: enabled.query("synth", SQL_AGG))


def test_e12_metrics_report(benchmark):
    """Run a mixed workload and persist the rendered telemetry report."""
    system = _build(observability=True)
    for _ in range(3):
        system.query("synth", SQL_AGG)
    system.query("synth", SQL_FILTER, optimizer="simple")
    system.query("synth", SQL_FILTER, optimizer="cost")

    metrics = system.metrics
    # every site shipped rows, every purpose was counted
    for index in range(SITE_COUNT):
        assert metrics.counter("site.rows_shipped", site=f"p{index}") > 0
    assert metrics.counter("net.messages", purpose="query") > 0
    assert metrics.counter("net.messages", purpose="result") > 0
    assert metrics.counter_total("query.executed") == 5
    latency = metrics.histogram_summary("query.sim_elapsed_s")
    assert latency["count"] == 5
    assert latency["p50"] <= latency["p95"] <= latency["p99"]

    # EXPLAIN ANALYZE on a cross-site join (the E2 query shape), both
    # optimizer strategies.
    join_system = build_two_site_join(200, 200, seed=7)
    join_sql = (
        "SELECT lhs.k, rhs.val FROM lhs, rhs "
        "WHERE lhs.k = rhs.k AND lhs.flt < 0.5"
    )
    explains = []
    for strategy in ("simple", "cost"):
        result = join_system.query("synth", join_sql, optimizer=strategy)
        explains.append(result.explain_analyze())
        assert f"GlobalPlan[{strategy}]" in explains[-1]

    RESULTS_DIR.mkdir(exist_ok=True)
    report = RESULTS_DIR / "e12_metrics_report.txt"
    report.write_text(
        "# E12: rendered observability report (mixed workload)\n\n"
        + system.observability_report(last_spans=4)
        + "\n\n# EXPLAIN ANALYZE: two-site join, both strategies\n\n"
        + "\n\n".join(explains)
        + "\n"
    )
    print(f"\nwrote {report}", flush=True)

    benchmark(lambda: system.observability_report(last_spans=4))
