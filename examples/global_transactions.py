"""Global transactions: 2PC, rollback, and timeout-based deadlock resolution.

Run:  python examples/global_transactions.py

Builds a three-site banking federation and demonstrates the paper's
transaction machinery:

1. a cross-site transfer committed with two-phase commit,
2. a global abort rolling back every branch,
3. a *global deadlock* (two transactions holding locks at different sites,
   each waiting for the other) resolved by MYRIAD's query-timeout policy,
4. the wait-for-graph "oracle" confirming it was a genuine deadlock.
"""

import threading
import time

from repro.errors import TransactionAborted
from repro.txn import WaitForGraphDetector
from repro.workloads import build_bank_sites, total_balance


def main() -> None:
    bank = build_bank_sites(3, 4, query_timeout=2.0)
    print(f"sites: {bank.site_names()}")
    print(f"initial total balance: {total_balance(bank):.2f}")

    # ------------------------------------------------------------- 2PC ---
    print("\n== cross-site transfer under 2PC ==")
    txn = bank.begin_transaction()
    txn.execute("b0", "UPDATE account SET balance = balance - 250 WHERE acct = 0")
    txn.execute("b1", "UPDATE account SET balance = balance + 250 WHERE acct = 4")
    txn.commit()
    print(f"  committed {txn.global_id}; 2PC messages: {txn.trace.message_count}")
    print(f"  total balance: {total_balance(bank):.2f} (conserved)")

    # ------------------------------------------------------------ abort ---
    print("\n== global abort rolls back every branch ==")
    txn = bank.begin_transaction()
    txn.execute("b0", "UPDATE account SET balance = 0 WHERE acct = 1")
    txn.execute("b2", "UPDATE account SET balance = 0 WHERE acct = 9")
    txn.abort()
    print(f"  aborted {txn.global_id}")
    print(f"  total balance: {total_balance(bank):.2f} (unchanged)")

    # -------------------------------------------------- global deadlock ---
    print("\n== induced global deadlock, resolved by timeout ==")
    t1 = bank.begin_transaction("G_ALPHA")
    t2 = bank.begin_transaction("G_BETA")
    t1.execute("b0", "UPDATE account SET balance = balance + 0 WHERE acct = 0")
    t2.execute("b1", "UPDATE account SET balance = balance + 0 WHERE acct = 4")
    print("  G_ALPHA holds locks at b0; G_BETA holds locks at b1")

    detector = WaitForGraphDetector(bank.gateways)
    outcomes = {}

    def run(txn, site, label):
        try:
            txn.execute(
                site,
                "UPDATE account SET balance = balance + 0 WHERE acct = 0",
                timeout=1.0,
            )
            txn.commit()
            outcomes[label] = "committed"
        except TransactionAborted as error:
            outcomes[label] = f"aborted ({error.reason})"

    threads = [
        threading.Thread(target=run, args=(t1, "b1", "G_ALPHA")),
        threading.Thread(target=run, args=(t2, "b0", "G_BETA")),
    ]
    for thread in threads:
        thread.start()
    time.sleep(0.3)
    cycles = detector.find_cycles()
    print(f"  oracle wait-for graph sees cycles: {cycles}")
    for thread in threads:
        thread.join()
    for label, outcome in sorted(outcomes.items()):
        print(f"  {label}: {outcome}")
    for txn in (t1, t2):
        try:
            txn.abort()
        except Exception:
            pass
    print(f"  total balance: {total_balance(bank):.2f} (still conserved)")
    print(
        f"  coordinator counters: commits={bank.transactions.commits}, "
        f"aborts={bank.transactions.aborts}, "
        f"timeout_aborts={bank.transactions.timeout_aborts}"
    )


if __name__ == "__main__":
    main()
