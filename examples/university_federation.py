"""The paper's demonstration scenario: a two-campus university federation.

Run:  python examples/university_federation.py

Twin Cities runs an Oracle-dialect database (GPAs on a 4.0 scale), Duluth a
Postgres-dialect one (percent grades).  Integrated relations reconcile the
schemas with relational operations and *user-defined integration functions*
(percent → 4.0 GPA conversion, phone-number conflict resolution), exactly
the integration style §2 of the paper describes.
"""

from repro.tools import browser
from repro.workloads import build_university_system


def main() -> None:
    system = build_university_system(
        students_per_campus=150, courses_per_campus=30, staff_count=50, seed=7
    )

    print(browser.list_components(system))
    print()
    print(browser.list_exports(system, "twin_cities"))
    print()
    print(browser.describe_relation(system, "university", "student"))

    print("\n== enterprise-wide dean's list (top 10 by normalised GPA) ==")
    result = system.query(
        "university",
        "SELECT name, gpa, campus FROM student ORDER BY gpa DESC, name LIMIT 10",
    )
    print(browser.format_result(result.columns, result.rows))

    print("\n== enrollment pressure per major, both campuses ==")
    result = system.query(
        "university",
        "SELECT s.major, COUNT(*) AS enrollments, AVG(e.grade) AS avg_grade "
        "FROM student s JOIN enrollment e ON s.sid = e.sid "
        "GROUP BY s.major ORDER BY enrollments DESC",
    )
    print(browser.format_result(result.columns, result.rows))

    print("\n== staff directory: HR (Twin Cities) ⋈ payroll (Duluth) ==")
    result = system.query(
        "university",
        "SELECT emp_id, name, title, salary, phone FROM staff_directory "
        "ORDER BY emp_id LIMIT 12",
    )
    print(browser.format_result(result.columns, result.rows))

    print("\n== conflicts the ALL_AGREE resolver would surface ==")
    federation = system.federation("university")
    federation.register_function(
        "DIFFER", lambda a, b: a is not None and b is not None and a != b
    )
    federation.define_relation(
        "phone_conflicts",
        "SELECT l.emp_id AS emp_id, l.phone AS hr_phone, r.phone AS payroll_phone "
        "FROM twin_cities.staff_hr l JOIN duluth.staff_payroll r "
        "ON l.emp_id = r.emp_id "
        "WHERE l.phone IS NOT NULL AND r.phone IS NOT NULL",
    )
    result = system.query(
        "university",
        "SELECT * FROM phone_conflicts WHERE hr_phone <> payroll_phone LIMIT 5",
    )
    print(browser.format_result(result.columns, result.rows))

    print("\n== how the optimizer localises a cross-campus query ==")
    print(
        system.explain(
            "university",
            "SELECT name FROM student WHERE gpa > 3.9 AND campus = 'duluth'",
            "cost",
        )
    )


if __name__ == "__main__":
    main()
