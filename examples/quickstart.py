"""Quickstart: build a two-site federation and run global queries.

Run:  python examples/quickstart.py

Builds an Oracle-dialect and a Postgres-dialect component database with
differently-shaped employee tables, exports them, merges them into one
integrated relation, and queries the federation — comparing the paper's
simple optimization strategy against the cost-based one.
"""

from repro import MyriadSystem, union_merge


def main() -> None:
    system = MyriadSystem()

    # --- two autonomous component DBMSs with different schemas/dialects ---
    ora = system.add_oracle("hq")
    pg = system.add_postgres("subsidiary")

    ora.dbms.execute_script(
        """
        CREATE TABLE employees (
            eno INTEGER PRIMARY KEY,
            ename VARCHAR2(30),
            salary NUMBER,
            dept VARCHAR2(10)
        );
        INSERT INTO employees VALUES
            (1, 'KING', 5000, 'EXEC'),
            (2, 'BLAKE', 2850, 'SALES'),
            (3, 'CLARK', 2450, 'ACCT'),
            (4, 'JONES', 2975, 'RESEARCH');
        """
    )
    pg.dbms.execute_script(
        """
        CREATE TABLE staff (
            id INTEGER PRIMARY KEY,
            full_name VARCHAR(30),
            pay FLOAT,
            unit VARCHAR(10)
        );
        INSERT INTO staff VALUES
            (101, 'ADAMS', 1100, 'RESEARCH'),
            (102, 'FORD', 3000, 'RESEARCH'),
            (103, 'MILLER', 1300, 'ACCT');
        """
    )

    # --- export schemas: each site decides what it shares, under which
    # names (local autonomy: the federation never sees local tables) ------
    ora.export_table(
        "employees",
        "emp",
        {"empno": "eno", "name": "ename", "sal": "salary", "dept": "dept"},
    )
    pg.export_table(
        "staff",
        "emp",
        {"empno": "id", "name": "full_name", "sal": "pay", "dept": "unit"},
    )

    # --- one federation with one integrated relation ---------------------
    federation = system.create_federation("corp")
    federation.add_relation(
        union_merge(
            "all_emp",
            [
                ("hq", "emp", ["empno", "name", "sal", "dept"]),
                ("subsidiary", "emp", ["empno", "name", "sal", "dept"]),
            ],
            source_tag_column="site",
        )
    )

    # --- global SQL -------------------------------------------------------
    print("== everyone earning > 2500, enterprise-wide ==")
    result = system.query(
        "corp",
        "SELECT name, sal, site FROM all_emp WHERE sal > 2500 ORDER BY sal DESC",
    )
    for row in result.rows:
        print("  ", row)

    print("\n== departments by headcount ==")
    result = system.query(
        "corp",
        "SELECT dept, COUNT(*) AS n, AVG(sal) AS avg_sal FROM all_emp "
        "GROUP BY dept ORDER BY n DESC, dept",
    )
    for row in result.rows:
        print("  ", row)

    # --- optimizer comparison (the paper's simple strategy vs cost-based) -
    sql = "SELECT name FROM all_emp WHERE sal > 2900"
    print(f"\n== optimizer comparison on: {sql} ==")
    for optimizer in ("simple", "cost"):
        res = system.query("corp", sql, optimizer=optimizer)
        print(
            f"  {optimizer:>7}: {len(res.rows)} rows, "
            f"{res.bytes_shipped} bytes shipped, "
            f"{res.trace.message_count} messages, "
            f"{res.elapsed_s * 1000:.2f} ms simulated"
        )

    print("\n== the cost-based global plan ==")
    print(system.explain("corp", sql, "cost"))


if __name__ == "__main__":
    main()
