"""Optimizer study: simple vs. cost-based vs. semijoin across workloads.

Run:  python examples/optimizer_study.py

Sweeps predicate selectivity and join match-fraction on a two-site
federation and prints, for each optimizer, bytes shipped and simulated
elapsed time — a miniature of benchmarks E2/E3.
"""

from repro.workloads import build_two_site_join


def run(system, sql, optimizer):
    result = system.query("synth", sql, optimizer=optimizer)
    return len(result.rows), result.bytes_shipped, result.elapsed_s * 1000


def main() -> None:
    print("== selection pushdown: vary selectivity ==")
    system = build_two_site_join(2000, 2000, match_fraction=0.5, seed=3)
    print(f"{'selectivity':>12} | {'optimizer':>9} | {'rows':>5} | "
          f"{'bytes':>8} | {'sim ms':>8}")
    for selectivity in (0.01, 0.1, 0.5, 1.0):
        sql = f"SELECT k, pad FROM lhs WHERE flt < {selectivity}"
        for optimizer in ("simple", "cost"):
            rows, shipped, ms = run(system, sql, optimizer)
            print(
                f"{selectivity:>12} | {optimizer:>9} | {rows:>5} | "
                f"{shipped:>8} | {ms:>8.2f}"
            )

    print("\n== semijoin: vary join match fraction ==")
    print(f"{'match':>6} | {'optimizer':>15} | {'rows':>5} | "
          f"{'bytes':>8} | {'sim ms':>8}")
    for match in (0.05, 0.25, 0.75):
        system = build_two_site_join(400, 4000, match_fraction=match, seed=5)
        sql = (
            "SELECT l.k, r.val FROM lhs l JOIN rhs r ON l.k = r.k "
            "WHERE l.flt < 0.2"
        )
        for optimizer in ("simple", "cost-nosemijoin", "cost"):
            rows, shipped, ms = run(system, sql, optimizer)
            print(
                f"{match:>6} | {optimizer:>15} | {rows:>5} | "
                f"{shipped:>8} | {ms:>8.2f}"
            )

    print("\nNote: 'cost' includes semijoin reduction when the model "
          "predicts a win;\nthe crossover with 'cost-nosemijoin' moves with "
          "the match fraction.")


if __name__ == "__main__":
    main()
