"""A workflow on top of MYRIAD (the paper's §3 future work), saga-style.

Run:  python examples/workflow_saga.py

A procurement process spanning three autonomous databases: reserve budget
at headquarters, allocate stock at the warehouse, record the order at the
sales office.  Each step is one 2PC-committed global transaction with a
semantic compensation; when a later step fails, earlier steps are undone in
reverse order — no locks are held between steps.
"""

from repro import MyriadSystem
from repro.errors import TransactionAborted
from repro.workflow import WorkflowEngine, WorkflowError, WorkflowStep


def build_company() -> MyriadSystem:
    system = MyriadSystem()
    hq = system.add_oracle("hq")
    warehouse = system.add_postgres("warehouse")
    sales = system.add_postgres("sales")

    hq.dbms.execute_script(
        """
        CREATE TABLE budget (dept VARCHAR2(12) PRIMARY KEY, remaining NUMBER);
        INSERT INTO budget VALUES ('procurement', 10000);
        """
    )
    warehouse.dbms.execute_script(
        """
        CREATE TABLE stock (item VARCHAR(12) PRIMARY KEY, qty INTEGER);
        INSERT INTO stock VALUES ('widget', 40);
        """
    )
    sales.dbms.execute_script(
        """
        CREATE TABLE orders (oid INTEGER PRIMARY KEY, item VARCHAR(12),
                             qty INTEGER, amount FLOAT);
        """
    )
    for gateway, table in ((hq, "budget"), (warehouse, "stock"), (sales, "orders")):
        gateway.export_table(table, table)
    return system


def make_steps(order_id, item, qty, amount):
    def reserve_budget(txn, ctx):
        remaining = float(
            txn.execute(
                "hq",
                "SELECT remaining FROM budget WHERE dept = 'procurement'",
            ).scalar()
        )
        if remaining < amount:
            raise TransactionAborted("insufficient budget")
        txn.execute(
            "hq",
            f"UPDATE budget SET remaining = remaining - {amount} "
            "WHERE dept = 'procurement'",
        )

    def release_budget(txn, ctx):
        txn.execute(
            "hq",
            f"UPDATE budget SET remaining = remaining + {amount} "
            "WHERE dept = 'procurement'",
        )

    def allocate_stock(txn, ctx):
        available = txn.execute(
            "warehouse", f"SELECT qty FROM stock WHERE item = '{item}'"
        ).scalar()
        if available < qty:
            raise TransactionAborted("out of stock")
        txn.execute(
            "warehouse",
            f"UPDATE stock SET qty = qty - {qty} WHERE item = '{item}'",
        )

    def return_stock(txn, ctx):
        txn.execute(
            "warehouse",
            f"UPDATE stock SET qty = qty + {qty} WHERE item = '{item}'",
        )

    def record_order(txn, ctx):
        txn.execute(
            "sales",
            f"INSERT INTO orders VALUES ({order_id}, '{item}', {qty}, {amount})",
        )

    def cancel_order(txn, ctx):
        txn.execute("sales", f"DELETE FROM orders WHERE oid = {order_id}")

    return [
        WorkflowStep("reserve_budget", reserve_budget, release_budget),
        WorkflowStep("allocate_stock", allocate_stock, return_stock),
        WorkflowStep("record_order", record_order, cancel_order),
    ]


def snapshot(system):
    budget = system.gateway("hq").execute_query(
        "SELECT remaining FROM budget"
    ).rows[0][0]
    stock = system.gateway("warehouse").execute_query(
        "SELECT qty FROM stock"
    ).rows[0][0]
    orders = system.gateway("sales").execute_query(
        "SELECT COUNT(*) FROM orders"
    ).rows[0][0]
    return f"budget={budget}, stock={stock}, orders={orders}"


def main() -> None:
    system = build_company()
    engine = WorkflowEngine(system)
    print("initial:", snapshot(system))

    print("\n== order #1: 10 widgets for 4000 (succeeds) ==")
    run = engine.run(make_steps(1, "widget", 10, 4000.0))
    print("  status:", run.status.value, "| steps:", run.completed_steps)
    print("  state:", snapshot(system))

    print("\n== order #2: 50 widgets for 5000 (fails at stock, compensates) ==")
    try:
        engine.run(make_steps(2, "widget", 50, 5000.0))
    except WorkflowError as error:
        print("  workflow error:", error)
    print("  state:", snapshot(system), " <- budget released, no order")

    print("\n== order #3: 5 widgets for 9000 (fails at budget immediately) ==")
    try:
        engine.run(make_steps(3, "widget", 5, 9000.0))
    except WorkflowError as error:
        print("  workflow error:", error)
    print("  state:", snapshot(system))

    print(
        f"\nengine counters: committed={engine.committed}, "
        f"compensated={engine.compensated}, stuck={engine.stuck}"
    )
    print("durable trail of order #2:", engine.history("W5"))


if __name__ == "__main__":
    main()
