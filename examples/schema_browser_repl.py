"""Drive the MYRIAD query interface (the paper's application tool) in script mode.

Run:  python examples/schema_browser_repl.py

Shows the DBA workflow the paper describes: browse component databases and
export schemas, create a federation, define integrated relations, pose
global queries, and run a global transaction — all through the same
interface an interactive user gets from ``myriad-repl``.
"""

from repro.tools import QueryInterface
from repro.workloads import build_university_system

SCRIPT = r"""
\components
\federations
\exports duluth
\describe staff_directory
SELECT campus, COUNT(*) AS students, AVG(gpa) AS avg_gpa FROM student GROUP BY campus ORDER BY campus
\define cs_honors AS SELECT name, gpa, campus FROM student WHERE major = 'CS' AND gpa >= 3.5
SELECT * FROM cs_honors ORDER BY gpa DESC LIMIT 5
\explain cost SELECT name FROM cs_honors
BEGIN
\at twin_cities UPDATE tc_student SET gpa = 4.0 WHERE sid = 1
SELECT gpa FROM student WHERE sid = 1 AND campus = 'twin_cities'
COMMIT
\optimizer simple
SELECT COUNT(*) FROM enrollment
\drop relation cs_honors
\relations
"""


def main() -> None:
    interface = QueryInterface(build_university_system(seed=11))
    for line in SCRIPT.strip().splitlines():
        print(f"myriad> {line}")
        output = interface.run_line(line)
        if output:
            print(output)
        print()


if __name__ == "__main__":
    main()
