"""Multiple federations over the same component databases.

Run:  python examples/multi_federation.py

The paper (§1): "In Myriad, multiple federations can be formed."  Different
user communities see different integrated schemas over the *same* autonomous
components — here an HR federation and an analytics federation over a
company's two regional databases, each with its own integrated relations,
integration functions, and even different conflict-resolution policy for the
same underlying attribute.
"""

from repro import MyriadSystem, join_merge, union_merge


def main() -> None:
    system = MyriadSystem()
    east = system.add_oracle("east")
    west = system.add_postgres("west")

    east.dbms.execute_script(
        """
        CREATE TABLE staff (eno INTEGER PRIMARY KEY, ename VARCHAR2(30),
                            wage NUMBER, grade NUMBER);
        INSERT INTO staff VALUES (1, 'ONO', 61000, 3);
        INSERT INTO staff VALUES (2, 'ROSS', 72000, 4);
        INSERT INTO staff VALUES (3, 'DIAZ', 55000, 2);
        """
    )
    west.dbms.execute_script(
        """
        CREATE TABLE employees (id INTEGER PRIMARY KEY, name VARCHAR(30),
                                salary FLOAT, grade INTEGER);
        INSERT INTO employees VALUES (2, 'ROSS', 74000, 4);
        INSERT INTO employees VALUES (4, 'KIM', 58000, 2);
        INSERT INTO employees VALUES (5, 'NG', 67000, 3);
        """
    )

    east.export_table(
        "staff", "emp",
        {"emp_id": "eno", "name": "ename", "salary": "wage", "grade": "grade"},
    )
    west.export_table(
        "employees", "emp",
        {"emp_id": "id", "name": "name", "salary": "salary", "grade": "grade"},
    )

    # --- Federation 1: HR — one row per employment contract --------------
    hr = system.create_federation("hr")
    hr.add_relation(
        union_merge(
            "contracts",
            [
                ("east", "emp", ["emp_id", "name", "salary", "grade"]),
                ("west", "emp", ["emp_id", "name", "salary", "grade"]),
            ],
            source_tag_column="region",
        )
    )

    # --- Federation 2: analytics — one row per PERSON, conflicts resolved -
    analytics = system.create_federation("analytics")
    analytics.add_relation(
        join_merge(
            "people",
            left=("east", "emp"),
            right=("west", "emp"),
            on=[("emp_id", "emp_id")],
            attributes={
                "emp_id": ("key", 0),
                "name": ("resolve", "PREFER_FIRST", "name", "name"),
                # Analytics policy: a double-employed person's salary is
                # the MAX of the contracts; HR would never do that.
                "salary": ("resolve", "MAX_CONFLICT", "salary", "salary"),
                "grade": ("resolve", "MAX_CONFLICT", "grade", "grade"),
            },
        )
    )

    print("== HR federation: contracts (note ROSS appears twice) ==")
    for row in system.query(
        "hr", "SELECT emp_id, name, salary, region FROM contracts ORDER BY emp_id, region"
    ).rows:
        print("  ", row)

    print("\n== analytics federation: people (ROSS resolved to MAX salary) ==")
    for row in system.query(
        "analytics", "SELECT emp_id, name, salary, grade FROM people ORDER BY emp_id"
    ).rows:
        print("  ", row)

    print("\n== the same global transaction can touch either federation ==")
    txn = system.begin_transaction()
    txn.execute("east", "UPDATE emp SET salary = salary + 1000 WHERE emp_id = 1")
    txn.commit()
    print(
        "  committed:",
        system.query("hr", "SELECT salary FROM contracts WHERE emp_id = 1").rows,
    )

    print("\n== per-federation grade statistics diverge by design ==")
    print(
        "  hr:",
        system.query(
            "hr", "SELECT grade, COUNT(*) FROM contracts GROUP BY grade ORDER BY grade"
        ).rows,
    )
    print(
        "  analytics:",
        system.query(
            "analytics", "SELECT grade, COUNT(*) FROM people GROUP BY grade ORDER BY grade"
        ).rows,
    )


if __name__ == "__main__":
    main()
