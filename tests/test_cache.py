"""Plan-cache and fragment-cache tests: hits, invalidation, edge cases.

The invalidation contract under test:

- committed DML through any gateway path (1PC, 2PC) bumps the written
  export's data version → the next read misses and fetches fresh rows
- DML inside an *aborted* global transaction must NOT invalidate
- degraded (``allow_partial``) fragments are never cached
- reads inside a global transaction bypass the fragment cache entirely
- redefining an integrated relation or an export flushes compiled plans
"""

import pytest

from repro.cache import FragmentCache, LRUCache, PlanCache, fragment_digest
from repro.myriad import MyriadSystem
from repro.workloads import build_bank_sites


@pytest.fixture
def bank():
    with build_bank_sites(3, 4, query_timeout=1.0) as system:
        yield system


BALANCES = "SELECT acct, balance FROM accounts"


def _hits(system):
    return system.metrics.counter_total("fragcache.hit")


class TestFragmentCacheHits:
    def test_repeat_read_costs_zero_messages(self, bank):
        first = bank.query("bank", BALANCES)
        messages_after_first = bank.network.total_messages
        second = bank.query("bank", BALANCES)
        assert bank.network.total_messages == messages_after_first
        assert second.rows == first.rows
        assert _hits(bank) == 3  # one per site
        assert second.trace.message_count == 0
        assert second.bytes_shipped == 0

    def test_explain_analyze_marks_cached_fetches(self, bank):
        bank.query("bank", BALANCES)
        second = bank.query("bank", BALANCES)
        analyzed = second.explain_analyze()
        assert "cached" in analyzed
        assert all(actual.cached for actual in second.fetch_actuals.values())

    def test_distinct_fragments_cached_separately(self, bank):
        bank.query("bank", BALANCES)
        bank.query("bank", "SELECT acct FROM accounts WHERE balance > 0")
        assert _hits(bank) == 0
        assert len(bank.processor("bank").fragment_cache) == 6


class TestFragmentCacheInvalidation:
    def test_committed_dml_invalidates(self, bank):
        stale = bank.query(
            "bank", "SELECT balance FROM accounts WHERE acct = 0"
        ).scalar()
        txn = bank.begin_transaction()
        txn.execute(
            "b0", "UPDATE account SET balance = 777 WHERE acct = 0"
        )
        txn.commit()
        fresh = bank.query(
            "bank", "SELECT balance FROM accounts WHERE acct = 0"
        ).scalar()
        assert stale == 1000.0
        assert fresh == 777.0

    def test_two_phase_commit_invalidates_every_branch(self, bank):
        bank.query("bank", BALANCES)
        txn = bank.begin_transaction()
        txn.execute(
            "b0", "UPDATE account SET balance = balance - 5 WHERE acct = 0"
        )
        txn.execute(
            "b1", "UPDATE account SET balance = balance + 5 WHERE acct = 4"
        )
        txn.commit()
        result = bank.query("bank", BALANCES)
        row = {acct: bal for acct, bal in result.rows}
        assert row[0] == 995.0
        assert row[4] == 1005.0
        # b2 was untouched: its fragment may still be served from cache
        assert _hits(bank) == 1

    def test_aborted_txn_does_not_invalidate(self, bank):
        bank.query("bank", BALANCES)
        txn = bank.begin_transaction()
        txn.execute(
            "b0", "UPDATE account SET balance = 0 WHERE acct = 0"
        )
        txn.abort()
        second = bank.query("bank", BALANCES)
        # nothing committed → every fragment still valid → all hits
        assert _hits(bank) == 3
        assert second.trace.message_count == 0
        assert {bal for _, bal in second.rows} == {1000.0}

    def test_reads_inside_global_txn_bypass_cache(self, bank):
        bank.query("bank", BALANCES)  # populate
        txn = bank.begin_transaction()
        result = bank.transactional_query(txn, "bank", BALANCES)
        txn.commit()
        assert _hits(bank) == 0
        assert result.trace.message_count > 0

    def test_degraded_fragments_never_cached(self, bank):
        faults = bank.inject_faults()
        faults.crash_site("b2")
        degraded = bank.query("bank", BALANCES, allow_partial=True)
        assert degraded.degraded and degraded.missing_sites == ["b2"]
        faults.restart_site("b2")
        # let b2's circuit-breaker cooldown elapse so the probe is admitted
        bank.network.advance(1.0)
        healed = bank.query("bank", BALANCES)
        assert not healed.degraded
        assert len(healed.rows) == 12  # b2's rows are back, not the empty
        assert _hits(bank) <= 2  # b2's fragment was never served from cache

    def test_export_schema_change_invalidates_site(self, bank):
        bank.query("bank", BALANCES)
        gateway = bank.gateway("b0")
        gateway.dbms.execute("CREATE TABLE aux (id INTEGER PRIMARY KEY)")
        gateway.export_table("aux", "aux")
        refreshed = bank.query("bank", BALANCES)
        assert len(refreshed.rows) == 12
        # b0's export epoch bumped → its fragment refetched; the other
        # sites' fragments are untouched and still hit
        assert bank.metrics.counter("fragcache.hit", site="b0") == 0
        assert bank.metrics.counter("fragcache.hit", site="b1") == 1


class TestPlanCache:
    def test_hit_and_miss_metrics(self, bank):
        metrics = bank.metrics
        bank.query("bank", BALANCES)
        assert metrics.counter_total("plancache.miss") == 1
        assert metrics.counter_total("plancache.hit") == 0
        bank.query("bank", BALANCES)
        assert metrics.counter_total("plancache.hit") == 1

    def test_optimizer_variants_cached_separately(self, bank):
        processor = bank.processor("bank")
        plan_a = processor.plan(BALANCES, "cost")
        plan_b = processor.plan(BALANCES, "cost-nosemijoin")
        assert plan_a is not plan_b
        assert bank.metrics.counter_total("plancache.miss") == 2

    def test_cached_plan_is_a_copy(self, bank):
        processor = bank.processor("bank")
        first = processor.plan(BALANCES)
        second = processor.plan(BALANCES)
        assert first is not second
        assert first.describe() == second.describe()

    def test_schema_redefinition_flushes(self, bank):
        bank.query("bank", BALANCES)
        fed = bank.federation("bank")
        relation = fed.get_relation("accounts")
        fed.drop_relation("accounts")
        fed.add_relation(relation)
        bank.query("bank", BALANCES)
        # second planning missed: the schema version moved the cache key
        assert bank.metrics.counter_total("plancache.miss") == 2
        assert bank.metrics.counter_total("plancache.hit") == 0

    def test_committed_dml_flushes(self, bank):
        bank.query("bank", BALANCES)
        txn = bank.begin_transaction()
        txn.execute(
            "b0", "UPDATE account SET balance = 1 WHERE acct = 0"
        )
        txn.commit()
        bank.query("bank", BALANCES)
        # stats version moved → plans recompile against fresh statistics
        assert bank.metrics.counter_total("plancache.miss") == 2

    def test_stats_refresh_flushes(self, bank):
        # regression companion to the gateway stats_version fix: an
        # explicit statistics refresh must expire compiled plans
        bank.query("bank", BALANCES)
        bank.gateway("b0").export_stats("account", refresh=True)
        bank.query("bank", BALANCES)
        assert bank.metrics.counter_total("plancache.miss") == 2
        assert bank.metrics.counter_total("plancache.hit") == 0

    def test_runtime_stats_version_moves_the_key(self):
        with build_bank_sites(2, 2, adaptive_feedback=True) as system:
            processor = system.processor("bank")
            key_before = processor._plan_cache_key(BALANCES, "cost")
            system.query("bank", BALANCES)
            # first execution learned fresh entries → version bumped →
            # plans compiled against the old estimates expire by key
            key_after = processor._plan_cache_key(BALANCES, "cost")
            assert processor.runtime_stats.version > 0
            assert key_before != key_after

    def test_adaptive_feedback_converges_to_cache_hits(self):
        with build_bank_sites(
            2, 2, adaptive_feedback=True, fragment_cache=False
        ) as system:
            system.query("bank", BALANCES)  # miss: cold cache
            system.query("bank", BALANCES)  # miss: version moved after run 1
            assert system.metrics.counter_total("plancache.miss") == 2
            # run 2 re-observed identical actuals: no drift, no bump — the
            # learned estimates converged and caching resumes
            system.query("bank", BALANCES)
            assert system.metrics.counter_total("plancache.hit") == 1

    def test_disabled_by_knob(self):
        with build_bank_sites(2, 2) as system:
            pass  # default system: cache on
        system = MyriadSystem(plan_cache_size=0, fragment_cache=False)
        gateway = system.add_postgres("s")
        gateway.dbms.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        gateway.export_table("t", "t")
        fed = system.create_federation("f")
        fed.define_relation("rel", "SELECT id FROM s.t")
        with system:
            processor = system.processor("f")
            assert processor.plan_cache is None
            assert processor.fragment_cache is None
            system.query("f", "SELECT id FROM rel")
            assert system.metrics.counter_total("plancache.miss") == 0
            assert system.metrics.counter_total("fragcache.miss") == 0


class TestCachePrimitives:
    def test_lru_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a
        cache.put("c", 3)  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats["evictions"] == 1

    def test_fragment_cache_rejects_racing_store(self):
        cache = FragmentCache()
        cache.store("s", "e", "SELECT 1", (0, 1), (0, 2), ["c"], [(1,)])
        assert cache.lookup("s", "e", "SELECT 1", (0, 2)) is None
        assert len(cache) == 0

    def test_fragment_cache_stale_entry_dropped_on_sight(self):
        cache = FragmentCache()
        cache.store("s", "e", "SELECT 1", (0, 1), (0, 1), ["c"], [(1,)])
        assert cache.lookup("s", "e", "SELECT 1", (0, 1)) is not None
        assert cache.lookup("s", "e", "SELECT 1", (0, 2)) is None
        assert cache.stats["stale_drops"] == 1
        assert len(cache) == 0

    def test_digest_differs_by_sql(self):
        assert fragment_digest("SELECT 1") != fragment_digest("SELECT 2")

    def test_plan_cache_bounded(self):
        cache = PlanCache(capacity=2)
        for i in range(5):
            cache.put(("q", i), {"plan": i})
        assert len(cache) == 2
