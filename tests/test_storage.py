"""Storage-engine tests: schemas, tables, indexes, catalog, stats."""

import pytest

from repro.errors import CatalogError, IntegrityError
from repro.storage import (
    Catalog,
    Column,
    HashIndex,
    INTEGER,
    OrderedIndex,
    Table,
    TableSchema,
    VARCHAR,
    analyze_table,
)
from repro.storage.stats import analyze_rows


def make_schema(name="t", pk=("id",)):
    return TableSchema(
        name,
        [
            Column("id", INTEGER, nullable=False),
            Column("name", VARCHAR),
            Column("grp", INTEGER),
        ],
        list(pk),
    )


class TestTableSchema:
    def test_column_lookup_case_insensitive(self):
        schema = make_schema()
        assert schema.column_index("ID") == 0
        assert schema.column("NAME").name == "name"

    def test_unknown_column(self):
        with pytest.raises(CatalogError):
            make_schema().column_index("nope")

    def test_duplicate_column_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("t", [Column("a", INTEGER), Column("A", INTEGER)])

    def test_pk_must_exist(self):
        with pytest.raises(CatalogError):
            make_schema(pk=("missing",))

    def test_validate_row_coerces(self):
        schema = make_schema()
        row = schema.validate_row(["1", 42, None])
        assert row == (1, "42", None)

    def test_validate_row_wrong_arity(self):
        with pytest.raises(IntegrityError):
            make_schema().validate_row([1])

    def test_not_null_enforced(self):
        with pytest.raises(IntegrityError):
            make_schema().validate_row([None, "x", 1])

    def test_row_from_mapping_defaults(self):
        schema = TableSchema(
            "t", [Column("a", INTEGER), Column("b", VARCHAR, default="d")]
        )
        assert schema.row_from_mapping({"a": 1}) == (1, "d")

    def test_row_from_mapping_unknown_column(self):
        with pytest.raises(CatalogError):
            make_schema().row_from_mapping({"zzz": 1})

    def test_key_of(self):
        schema = make_schema()
        assert schema.key_of((7, "x", 1)) == (7,)
        no_pk = make_schema(pk=())
        assert no_pk.key_of((7, "x", 1)) is None


class TestTable:
    def test_insert_and_scan(self):
        table = Table(make_schema())
        rid1 = table.insert([1, "a", 10])
        rid2 = table.insert([2, "b", 20])
        assert rid1 != rid2
        assert [row for _, row in table.scan()] == [(1, "a", 10), (2, "b", 20)]
        assert len(table) == 2

    def test_pk_uniqueness(self):
        table = Table(make_schema())
        table.insert([1, "a", 10])
        with pytest.raises(IntegrityError):
            table.insert([1, "dup", 20])
        assert len(table) == 1  # failed insert left nothing behind

    def test_pk_null_rejected(self):
        table = Table(make_schema())
        with pytest.raises(IntegrityError):
            table.insert([None, "a", 1])

    def test_delete_returns_old_row(self):
        table = Table(make_schema())
        rid = table.insert([1, "a", 10])
        assert table.delete(rid) == (1, "a", 10)
        assert len(table) == 0
        # PK free again
        table.insert([1, "again", 10])

    def test_update(self):
        table = Table(make_schema())
        rid = table.insert([1, "a", 10])
        old, new = table.update(rid, [1, "b", 11])
        assert old == (1, "a", 10)
        assert new == (1, "b", 11)
        assert table.get(rid) == (1, "b", 11)

    def test_update_pk_conflict_restores_old_state(self):
        table = Table(make_schema())
        rid = table.insert([1, "a", 10])
        table.insert([2, "b", 20])
        with pytest.raises(IntegrityError):
            table.update(rid, [2, "clash", 10])
        assert table.get(rid) == (1, "a", 10)
        assert table.fetch_by_key((1,)) is not None

    def test_restore_for_undo(self):
        table = Table(make_schema())
        rid = table.insert([1, "a", 10])
        row = table.delete(rid)
        table.restore(rid, row)
        assert table.get(rid) == (1, "a", 10)
        with pytest.raises(IntegrityError):
            table.restore(rid, row)

    def test_fetch_by_key(self):
        table = Table(make_schema())
        table.insert([5, "x", 1])
        rid, row = table.fetch_by_key((5,))
        assert row == (5, "x", 1)
        assert table.fetch_by_key((99,)) is None

    def test_truncate(self):
        table = Table(make_schema())
        table.insert([1, "a", 10])
        table.truncate()
        assert len(table) == 0
        table.insert([1, "a", 10])  # PK index was cleared too

    def test_secondary_index_maintenance(self):
        table = Table(make_schema())
        index = table.create_index("by_grp", ["grp"], ordered=True)
        rid = table.insert([1, "a", 10])
        table.insert([2, "b", 10])
        assert len(index.lookup((10,))) == 2
        table.update(rid, [1, "a", 11])
        assert index.lookup((10,)) != index.lookup((11,))
        assert len(index.lookup((11,))) == 1
        table.delete(rid)
        assert len(index.lookup((11,))) == 0

    def test_create_index_on_existing_rows(self):
        table = Table(make_schema())
        table.insert([1, "a", 10])
        table.insert([2, "b", 20])
        index = table.create_index("late", ["grp"])
        assert len(index.lookup((20,))) == 1

    def test_duplicate_index_name(self):
        table = Table(make_schema())
        table.create_index("i", ["grp"])
        with pytest.raises(CatalogError):
            table.create_index("i", ["name"])

    def test_find_index(self):
        table = Table(make_schema())
        table.create_index("i", ["grp"])
        assert table.find_index(["GRP"]) is not None
        assert table.find_index(["name"]) is None


class TestIndexes:
    def test_hash_index_basics(self):
        index = HashIndex("i", "t", ["k"])
        index.insert((1,), 100)
        index.insert((1,), 101)
        assert index.lookup((1,)) == {100, 101}
        index.delete((1,), 100)
        assert index.lookup((1,)) == {101}
        assert index.lookup((9,)) == set()

    def test_unique_violation(self):
        index = HashIndex("i", "t", ["k"], unique=True)
        index.insert((1,), 100)
        with pytest.raises(IntegrityError):
            index.insert((1,), 101)

    def test_unique_allows_nulls(self):
        index = HashIndex("i", "t", ["k"], unique=True)
        index.insert((None,), 1)
        index.insert((None,), 2)  # SQL: NULLs don't collide
        assert len(index.lookup((None,))) == 2

    def test_ordered_range_scan(self):
        index = OrderedIndex("i", "t", ["k"])
        for position, key in enumerate([5, 1, 3, 9, 7]):
            index.insert((key,), position)
        keys = [k for k, _ in index.range_scan((3,), (7,))]
        assert keys == [(3,), (5,), (7,)]

    def test_ordered_range_exclusive(self):
        index = OrderedIndex("i", "t", ["k"])
        for key in (1, 2, 3):
            index.insert((key,), key)
        keys = [
            k
            for k, _ in index.range_scan(
                (1,), (3,), low_inclusive=False, high_inclusive=False
            )
        ]
        assert keys == [(2,)]

    def test_ordered_open_bounds(self):
        index = OrderedIndex("i", "t", ["k"])
        for key in (1, 2, 3):
            index.insert((key,), key)
        assert [k for k, _ in index.range_scan(None, (2,))] == [(1,), (2,)]
        assert [k for k, _ in index.range_scan((2,), None)] == [(2,), (3,)]

    def test_range_skips_null_keys(self):
        index = OrderedIndex("i", "t", ["k"])
        index.insert((None,), 1)
        index.insert((2,), 2)
        assert [k for k, _ in index.range_scan(None, None)] == [(2,)]

    def test_delete_keeps_sorted_structure(self):
        index = OrderedIndex("i", "t", ["k"])
        for key in (1, 2, 3):
            index.insert((key,), key)
        index.delete((2,), 2)
        assert [k for k, _ in index.range_scan(None, None)] == [(1,), (3,)]

    def test_distinct_keys(self):
        index = HashIndex("i", "t", ["k"])
        index.insert((1,), 1)
        index.insert((1,), 2)
        index.insert((2,), 3)
        assert index.distinct_keys == 2
        assert len(index) == 3


class TestCatalog:
    def test_create_get_drop(self):
        catalog = Catalog("db")
        catalog.create_table(make_schema())
        assert catalog.has_table("T")
        assert catalog.get_table("t").name == "t"
        catalog.drop_table("t")
        assert not catalog.has_table("t")

    def test_duplicate_table(self):
        catalog = Catalog("db")
        catalog.create_table(make_schema())
        with pytest.raises(CatalogError):
            catalog.create_table(make_schema())
        # if_not_exists variant returns existing
        table = catalog.create_table(make_schema(), if_not_exists=True)
        assert table is catalog.get_table("t")

    def test_drop_missing(self):
        catalog = Catalog("db")
        with pytest.raises(CatalogError):
            catalog.drop_table("nope")
        catalog.drop_table("nope", if_exists=True)

    def test_stats_cached_and_invalidated(self):
        catalog = Catalog("db")
        table = catalog.create_table(make_schema())
        table.insert([1, "a", 10])
        stats1 = catalog.stats("t")
        assert stats1.row_count == 1
        table.insert([2, "b", 20])
        assert catalog.stats("t").row_count == 1  # cached
        catalog.invalidate_stats("t")
        assert catalog.stats("t").row_count == 2


class TestStatistics:
    def test_analyze_table(self):
        table = Table(make_schema())
        for i in range(10):
            table.insert([i, f"n{i % 3}", i % 2])
        stats = analyze_table(table)
        assert stats.row_count == 10
        assert stats.column("id").distinct == 10
        assert stats.column("name").distinct == 3
        assert stats.column("grp").distinct == 2
        assert stats.column("id").minimum == 0
        assert stats.column("id").maximum == 9

    def test_null_counting(self):
        stats = analyze_rows("v", ["a"], [(1,), (None,), (None,)])
        assert stats.column("a").null_count == 2
        assert stats.column("a").null_fraction(3) == pytest.approx(2 / 3)

    def test_eq_selectivity(self):
        stats = analyze_rows("v", ["a"], [(i % 4,) for i in range(100)])
        assert stats.column("a").eq_selectivity(100) == pytest.approx(0.25)

    def test_range_selectivity_histogram(self):
        stats = analyze_rows("v", ["a"], [(float(i),) for i in range(100)])
        sel = stats.column("a").range_selectivity("<", 25.0, 100)
        assert 0.15 < sel < 0.35

    def test_range_selectivity_extremes(self):
        stats = analyze_rows("v", ["a"], [(float(i),) for i in range(100)])
        assert stats.column("a").range_selectivity("<", 1000.0, 100) == 1.0
        assert stats.column("a").range_selectivity(">", 1000.0, 100) == 0.0

    def test_empty_table_stats(self):
        stats = analyze_rows("v", ["a"], [])
        assert stats.row_count == 0
        assert stats.column("a").eq_selectivity(0) == 0.0

    def test_avg_row_bytes(self):
        stats = analyze_rows("v", ["a", "b"], [(1, "hello")])
        assert stats.avg_row_bytes > 0
