"""Parser unit tests covering the full grammar."""

import pytest

from repro.errors import ParseError
from repro.sql import ast, parse_expression, parse_query, parse_script, parse_statement


class TestSelectBasics:
    def test_simple_select(self):
        stmt = parse_statement("SELECT a FROM t")
        assert isinstance(stmt, ast.Select)
        assert stmt.items[0].expression == ast.ColumnRef("a")
        assert stmt.from_clause == [ast.TableName("t")]

    def test_select_star(self):
        stmt = parse_statement("SELECT * FROM t")
        assert isinstance(stmt.items[0].expression, ast.Star)

    def test_select_qualified_star(self):
        stmt = parse_statement("SELECT t.* FROM t")
        assert stmt.items[0].expression == ast.Star("t")

    def test_select_without_from(self):
        stmt = parse_statement("SELECT 1 + 2")
        assert stmt.from_clause == []

    def test_aliases(self):
        stmt = parse_statement("SELECT a AS x, b y FROM t u")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.from_clause[0].alias == "u"

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT a FROM t").distinct
        assert not parse_statement("SELECT ALL a FROM t").distinct

    def test_where(self):
        stmt = parse_statement("SELECT a FROM t WHERE a > 1")
        assert isinstance(stmt.where, ast.BinaryOp)
        assert stmt.where.op == ">"

    def test_group_by_having(self):
        stmt = parse_statement(
            "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2"
        )
        assert stmt.group_by == [ast.ColumnRef("a")]
        assert stmt.having is not None

    def test_order_by(self):
        stmt = parse_statement("SELECT a FROM t ORDER BY a DESC, b")
        assert stmt.order_by[0].ascending is False
        assert stmt.order_by[1].ascending is True

    def test_limit_offset(self):
        stmt = parse_statement("SELECT a FROM t LIMIT 10 OFFSET 5")
        assert stmt.limit == 10
        assert stmt.offset == 5

    def test_output_name(self):
        stmt = parse_statement("SELECT a, b AS c, a+1 FROM t")
        assert stmt.items[0].output_name == "a"
        assert stmt.items[1].output_name == "c"
        assert stmt.items[2].output_name == "?column?"


class TestJoins:
    def test_inner_join_on(self):
        stmt = parse_statement("SELECT * FROM a JOIN b ON a.x = b.y")
        join = stmt.from_clause[0]
        assert isinstance(join, ast.Join)
        assert join.join_type is ast.JoinType.INNER
        assert join.condition is not None

    def test_left_right_full_cross(self):
        for sql, jt in [
            ("a LEFT JOIN b ON a.x=b.x", ast.JoinType.LEFT),
            ("a LEFT OUTER JOIN b ON a.x=b.x", ast.JoinType.LEFT),
            ("a RIGHT JOIN b ON a.x=b.x", ast.JoinType.RIGHT),
            ("a FULL JOIN b ON a.x=b.x", ast.JoinType.FULL),
            ("a FULL OUTER JOIN b ON a.x=b.x", ast.JoinType.FULL),
            ("a CROSS JOIN b", ast.JoinType.CROSS),
        ]:
            stmt = parse_statement(f"SELECT * FROM {sql}")
            assert stmt.from_clause[0].join_type is jt, sql

    def test_join_using(self):
        stmt = parse_statement("SELECT * FROM a JOIN b USING (k1, k2)")
        assert stmt.from_clause[0].using == ["k1", "k2"]

    def test_chained_joins_left_deep(self):
        stmt = parse_statement(
            "SELECT * FROM a JOIN b ON a.x=b.x JOIN c ON b.y=c.y"
        )
        outer = stmt.from_clause[0]
        assert isinstance(outer.left, ast.Join)
        assert isinstance(outer.right, ast.TableName)

    def test_comma_joins(self):
        stmt = parse_statement("SELECT * FROM a, b, c")
        assert len(stmt.from_clause) == 3

    def test_derived_table(self):
        stmt = parse_statement("SELECT * FROM (SELECT a FROM t) AS d")
        ref = stmt.from_clause[0]
        assert isinstance(ref, ast.SubqueryRef)
        assert ref.alias == "d"

    def test_join_without_condition_fails(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT * FROM a JOIN b")

    def test_schema_qualified_table(self):
        stmt = parse_statement("SELECT * FROM site1.emp")
        assert stmt.from_clause[0].name == "site1.emp"


class TestExpressions:
    def test_precedence_arithmetic(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_and_or(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert expr.op == "OR"
        assert expr.right.op == "AND"

    def test_parentheses(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_not(self):
        expr = parse_expression("NOT a = 1")
        assert isinstance(expr, ast.UnaryOp)
        assert expr.op == "NOT"

    def test_unary_minus(self):
        expr = parse_expression("-x + 1")
        assert expr.op == "+"
        assert isinstance(expr.left, ast.UnaryOp)

    def test_comparison_bang_eq_normalised(self):
        assert parse_expression("a != 1").op == "<>"

    def test_between(self):
        expr = parse_expression("x BETWEEN 1 AND 10")
        assert isinstance(expr, ast.Between)
        assert not expr.negated

    def test_not_between(self):
        assert parse_expression("x NOT BETWEEN 1 AND 10").negated

    def test_like(self):
        assert parse_expression("name LIKE 'A%'").op == "LIKE"
        assert parse_expression("name NOT LIKE 'A%'").op == "NOT LIKE"

    def test_in_list(self):
        expr = parse_expression("x IN (1, 2, 3)")
        assert isinstance(expr, ast.InList)
        assert len(expr.items) == 3

    def test_not_in_list(self):
        assert parse_expression("x NOT IN (1)").negated

    def test_in_subquery(self):
        expr = parse_expression("x IN (SELECT y FROM t)")
        assert isinstance(expr, ast.InSubquery)

    def test_exists(self):
        expr = parse_expression("EXISTS (SELECT 1 FROM t)")
        assert isinstance(expr, ast.Exists)

    def test_not_exists(self):
        expr = parse_expression("NOT EXISTS (SELECT 1 FROM t)")
        assert isinstance(expr, ast.UnaryOp)  # NOT wraps Exists
        assert isinstance(expr.operand, ast.Exists)

    def test_scalar_subquery(self):
        expr = parse_expression("(SELECT MAX(x) FROM t)")
        assert isinstance(expr, ast.ScalarSubquery)

    def test_is_null(self):
        assert isinstance(parse_expression("x IS NULL"), ast.IsNull)
        assert parse_expression("x IS NOT NULL").negated

    def test_case_searched(self):
        expr = parse_expression(
            "CASE WHEN x > 1 THEN 'big' WHEN x > 0 THEN 'small' ELSE 'neg' END"
        )
        assert isinstance(expr, ast.Case)
        assert expr.operand is None
        assert len(expr.whens) == 2
        assert expr.default == ast.Literal("neg")

    def test_case_simple(self):
        expr = parse_expression("CASE x WHEN 1 THEN 'one' END")
        assert expr.operand == ast.ColumnRef("x")

    def test_case_requires_when(self):
        with pytest.raises(ParseError):
            parse_expression("CASE ELSE 1 END")

    def test_cast(self):
        expr = parse_expression("CAST(x AS INTEGER)")
        assert isinstance(expr, ast.Cast)
        assert expr.type_name == "INTEGER"

    def test_cast_with_params(self):
        expr = parse_expression("CAST(x AS VARCHAR(10))")
        assert expr.type_name == "VARCHAR(10)"

    def test_function_call(self):
        expr = parse_expression("UPPER(name)")
        assert isinstance(expr, ast.FunctionCall)
        assert expr.name == "UPPER"

    def test_count_star(self):
        expr = parse_expression("COUNT(*)")
        assert isinstance(expr.args[0], ast.Star)
        assert expr.is_aggregate

    def test_count_distinct(self):
        assert parse_expression("COUNT(DISTINCT x)").distinct

    def test_date_literal(self):
        expr = parse_expression("DATE '2020-01-01'")
        assert isinstance(expr, ast.Cast)
        assert expr.type_name == "DATE"

    def test_boolean_and_null_literals(self):
        assert parse_expression("TRUE") == ast.Literal(True)
        assert parse_expression("FALSE") == ast.Literal(False)
        assert parse_expression("NULL") == ast.Literal(None)

    def test_concat_operator(self):
        assert parse_expression("a || b").op == "||"

    def test_qualified_column(self):
        assert parse_expression("t.c") == ast.ColumnRef("c", "t")

    def test_parameters_are_numbered(self):
        stmt = parse_statement("SELECT * FROM t WHERE a = ? AND b = ?")
        conjuncts = ast.split_conjuncts(stmt.where)
        assert conjuncts[0].right == ast.Parameter(0)
        assert conjuncts[1].right == ast.Parameter(1)


class TestSetOperations:
    def test_union(self):
        query = parse_query("SELECT a FROM t UNION SELECT b FROM u")
        assert isinstance(query, ast.SetOperation)
        assert query.kind is ast.SetOpKind.UNION

    def test_union_all(self):
        query = parse_query("SELECT a FROM t UNION ALL SELECT b FROM u")
        assert query.kind is ast.SetOpKind.UNION_ALL

    def test_intersect_except(self):
        assert (
            parse_query("SELECT a FROM t INTERSECT SELECT a FROM u").kind
            is ast.SetOpKind.INTERSECT
        )
        assert (
            parse_query("SELECT a FROM t EXCEPT SELECT a FROM u").kind
            is ast.SetOpKind.EXCEPT
        )

    def test_chained_set_ops_left_assoc(self):
        query = parse_query(
            "SELECT a FROM t UNION SELECT a FROM u UNION ALL SELECT a FROM v"
        )
        assert query.kind is ast.SetOpKind.UNION_ALL
        assert isinstance(query.left, ast.SetOperation)

    def test_set_op_order_limit(self):
        query = parse_query(
            "SELECT a FROM t UNION SELECT a FROM u ORDER BY a LIMIT 5"
        )
        assert query.order_by and query.limit == 5


class TestDML:
    def test_insert_values(self):
        stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(stmt, ast.Insert)
        assert stmt.columns == ["a", "b"]
        assert len(stmt.rows) == 2

    def test_insert_without_columns(self):
        stmt = parse_statement("INSERT INTO t VALUES (1)")
        assert stmt.columns == []

    def test_insert_select(self):
        stmt = parse_statement("INSERT INTO t SELECT * FROM u")
        assert stmt.query is not None

    def test_update(self):
        stmt = parse_statement("UPDATE t SET a = 1, b = b + 1 WHERE c = 2")
        assert isinstance(stmt, ast.Update)
        assert len(stmt.assignments) == 2
        assert stmt.where is not None

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, ast.Delete)

    def test_delete_all(self):
        assert parse_statement("DELETE FROM t").where is None


class TestDDL:
    def test_create_table(self):
        stmt = parse_statement(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, "
            "name VARCHAR(30) NOT NULL, price FLOAT DEFAULT 0)"
        )
        assert isinstance(stmt, ast.CreateTable)
        assert stmt.columns[0].primary_key
        assert stmt.columns[1].not_null
        assert stmt.columns[2].default == ast.Literal(0)

    def test_create_table_composite_pk(self):
        stmt = parse_statement(
            "CREATE TABLE t (a INTEGER, b INTEGER, PRIMARY KEY (a, b))"
        )
        assert stmt.primary_key == ["a", "b"]

    def test_create_table_if_not_exists(self):
        assert parse_statement(
            "CREATE TABLE IF NOT EXISTS t (a INTEGER)"
        ).if_not_exists

    def test_create_table_unique(self):
        stmt = parse_statement("CREATE TABLE t (a INTEGER UNIQUE)")
        assert stmt.columns[0].unique

    def test_oracle_types(self):
        stmt = parse_statement(
            "CREATE TABLE t (n NUMBER(38), s VARCHAR2(10))"
        )
        assert stmt.columns[0].type_name == "NUMBER"
        assert stmt.columns[0].type_params == (38,)

    def test_drop_table(self):
        stmt = parse_statement("DROP TABLE t")
        assert isinstance(stmt, ast.DropTable)
        assert not stmt.if_exists
        assert parse_statement("DROP TABLE IF EXISTS t").if_exists

    def test_create_index(self):
        stmt = parse_statement("CREATE INDEX i ON t (a, b)")
        assert isinstance(stmt, ast.CreateIndex)
        assert stmt.columns == ["a", "b"]
        assert not stmt.unique
        assert parse_statement("CREATE UNIQUE INDEX i ON t (a)").unique


class TestTransactionsAndScripts:
    def test_txn_statements(self):
        assert isinstance(parse_statement("BEGIN"), ast.BeginTransaction)
        assert isinstance(parse_statement("COMMIT WORK"), ast.CommitTransaction)
        assert isinstance(parse_statement("ROLLBACK"), ast.RollbackTransaction)

    def test_script(self):
        statements = parse_script(
            "CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1); "
            "SELECT * FROM t;"
        )
        assert len(statements) == 3

    def test_trailing_semicolon_ok(self):
        parse_statement("SELECT 1;")

    def test_garbage_after_statement(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT 1 SELECT 2")

    def test_error_messages_carry_location(self):
        with pytest.raises(ParseError) as exc:
            parse_statement("SELECT FROM t")
        assert "line" in str(exc.value)

    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse_statement("")

    def test_parse_query_rejects_dml(self):
        with pytest.raises(ParseError):
            parse_query("DELETE FROM t")
