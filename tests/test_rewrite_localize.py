"""Unit tests for the optimizer rewrites and the localizer."""

import pytest

from repro.myriad import MyriadSystem
from repro.query.rewrite import prune_projections, push_selections
from repro.sql import ast, parse_query, to_sql


def q(sql: str) -> ast.Query:
    return parse_query(sql)


class TestPushSelections:
    def test_push_into_plain_view(self):
        query = push_selections(
            q("SELECT a FROM (SELECT x AS a FROM t) AS v WHERE a > 1")
        )
        body = query.from_clause[0].query
        assert body.where is not None
        assert query.where is None
        # the pushed predicate is over the *source* expression
        assert "x > 1" in to_sql(body)

    def test_push_through_union_all(self):
        query = push_selections(
            q(
                "SELECT a FROM (SELECT x AS a FROM t UNION ALL "
                "SELECT y AS a FROM u) AS v WHERE a = 5"
            )
        )
        setop = query.from_clause[0].query
        assert setop.left.where is not None
        assert setop.right.where is not None
        assert query.where is None

    def test_no_push_into_aggregating_view(self):
        query = push_selections(
            q(
                "SELECT n FROM (SELECT COUNT(*) AS n FROM t) AS v WHERE n > 1"
            )
        )
        assert query.where is not None  # stayed outside
        assert query.from_clause[0].query.where is None

    def test_no_push_into_grouped_view(self):
        query = push_selections(
            q(
                "SELECT g FROM (SELECT g FROM t GROUP BY g) AS v WHERE g > 1"
            )
        )
        assert query.where is not None

    def test_no_push_into_limited_view(self):
        query = push_selections(
            q("SELECT a FROM (SELECT a FROM t LIMIT 5) AS v WHERE a > 1")
        )
        assert query.where is not None

    def test_no_push_below_null_supplying_side(self):
        query = push_selections(
            q(
                "SELECT * FROM (SELECT a FROM t) AS l "
                "LEFT JOIN (SELECT b FROM u) AS r ON l.a = r.b "
                "WHERE r.b IS NULL"
            )
        )
        # predicate over the null-supplied side must stay outside
        assert query.where is not None

    def test_push_preserved_side_of_left_join(self):
        query = push_selections(
            q(
                "SELECT * FROM (SELECT a FROM t) AS l "
                "LEFT JOIN (SELECT b FROM u) AS r ON l.a = r.b "
                "WHERE l.a > 3"
            )
        )
        assert query.where is None
        left_body = query.from_clause[0].left.query
        assert left_body.where is not None

    def test_multi_binding_conjunct_stays(self):
        query = push_selections(
            q(
                "SELECT * FROM (SELECT a FROM t) AS x, (SELECT b FROM u) AS y "
                "WHERE x.a = y.b"
            )
        )
        assert query.where is not None

    def test_push_keeps_answers(self):
        """Rewrite equivalence check on a real engine."""
        from repro.engine import LocalEngine
        from repro.storage import Catalog

        engine = LocalEngine(Catalog())
        engine.execute("CREATE TABLE t (x INTEGER, y INTEGER)")
        for i in range(10):
            engine.execute(f"INSERT INTO t VALUES ({i}, {i * i})")
        sql = (
            "SELECT a, b FROM (SELECT x AS a, y AS b FROM t UNION ALL "
            "SELECT y AS a, x AS b FROM t) AS v WHERE a < 5 ORDER BY a, b"
        )
        plain = engine.execute(sql).rows
        rewritten = push_selections(parse_query(sql))
        pushed = engine.execute_query(rewritten).rows
        assert plain == pushed


class TestPruneProjections:
    def test_prune_unused_view_columns(self):
        query = prune_projections(
            q("SELECT a FROM (SELECT x AS a, y AS b, z AS c FROM t) AS v")
        )
        body = query.from_clause[0].query
        assert [i.output_name for i in body.items] == ["a"]

    def test_prune_through_union_all_positionally(self):
        query = prune_projections(
            q(
                "SELECT a FROM (SELECT x AS a, y AS b FROM t UNION ALL "
                "SELECT p AS a, r AS b FROM u) AS v"
            )
        )
        setop = query.from_clause[0].query
        assert [i.output_name for i in setop.left.items] == ["a"]
        assert len(setop.right.items) == 1

    def test_no_prune_distinct_union(self):
        query = prune_projections(
            q(
                "SELECT a FROM (SELECT x AS a, y AS b FROM t UNION "
                "SELECT p AS a, r AS b FROM u) AS v"
            )
        )
        setop = query.from_clause[0].query
        assert len(setop.left.items) == 2  # untouched

    def test_no_prune_when_star_used(self):
        query = prune_projections(
            q("SELECT * FROM (SELECT x AS a, y AS b FROM t) AS v")
        )
        assert len(query.from_clause[0].query.items) == 2

    def test_where_columns_count_as_used(self):
        query = prune_projections(
            q(
                "SELECT a FROM (SELECT x AS a, y AS b, z AS c FROM t) AS v "
                "WHERE b > 1"
            )
        )
        names = [i.output_name for i in query.from_clause[0].query.items]
        assert names == ["a", "b"]

    def test_join_condition_columns_kept(self):
        query = prune_projections(
            q(
                "SELECT l.a FROM (SELECT x AS a, k AS lk, z AS junk FROM t) AS l "
                "JOIN (SELECT k AS rk, w AS junk2 FROM u) AS r ON l.lk = r.rk"
            )
        )
        left_names = [
            i.output_name for i in query.from_clause[0].left.query.items
        ]
        assert sorted(left_names) == ["a", "lk"]


class TestLocalizerPlans:
    @pytest.fixture
    def system(self):
        sys_ = MyriadSystem()
        a = sys_.add_postgres("a")
        b = sys_.add_oracle("b")
        a.dbms.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v FLOAT, w VARCHAR(8))")
        b.dbms.execute("CREATE TABLE u (k INTEGER PRIMARY KEY, x FLOAT)")
        for i in range(30):
            a.dbms.execute(f"INSERT INTO t VALUES ({i}, {i * 1.0}, 'w{i}')")
            b.dbms.execute(f"INSERT INTO u VALUES ({i}, {i * 2.0})")
        a.export_table("t", "t")
        b.export_table("u", "u")
        fed = sys_.create_federation("f")
        fed.define_relation("tv", "SELECT k, v, w FROM a.t")
        fed.define_relation("uv", "SELECT k, x FROM b.u")
        return sys_

    def test_one_fetch_per_export_ref(self, system):
        plan = system.processor("f").plan(
            "SELECT tv.v FROM tv JOIN uv ON tv.k = uv.k", "simple"
        )
        assert len(plan.fetches) == 2
        assert {f.site for f in plan.fetches} == {"a", "b"}

    def test_join_edges_detected_through_views(self, system):
        plan = system.processor("f").plan(
            "SELECT tv.v FROM tv JOIN uv ON tv.k = uv.k", "cost-nosemijoin"
        )
        assert len(plan.join_edges) >= 1
        edge = plan.join_edges[0]
        assert {edge.left_column, edge.right_column} == {"k"}

    def test_semijoin_dependency_ordering(self, system):
        # Make uv selective so a semijoin gets chosen.
        plan = system.processor("f").plan(
            "SELECT tv.v FROM tv JOIN uv ON tv.k = uv.k WHERE uv.x = 4.0",
            "cost",
        )
        reduced = [f for f in plan.fetches if f.semijoin is not None]
        if reduced:  # model-dependent, but execution must stay correct
            target = reduced[0]
            assert target.semijoin.source_index != target.index

    def test_same_export_twice_two_fetches(self, system):
        plan = system.processor("f").plan(
            "SELECT x.v FROM tv x JOIN tv y ON x.k = y.k", "simple"
        )
        assert len(plan.fetches) == 2
        assert len({f.temp_name for f in plan.fetches}) == 2

    def test_fetch_shipped_query_is_dialect_translatable(self, system):
        plan = system.processor("f").plan("SELECT v FROM tv WHERE k < 3", "cost")
        fetch = plan.fetches[0]
        shipped = fetch.shipped_query()
        assert to_sql(shipped)  # printable

    def test_semijoin_empty_keys_yields_false_predicate(self, system):
        from repro.query.localizer import Fetch, SemiJoinSpec

        fetch = Fetch(
            index=1,
            site="a",
            export="t",
            binding="t",
            temp_name="tmp",
            columns=["k"],
            semijoin=SemiJoinSpec(0, "k", "k"),
        )
        shipped = fetch.shipped_query([])
        assert "1 = 0" in to_sql(shipped)

    def test_unknown_relation_raises(self, system):
        from repro.errors import FederationError

        with pytest.raises(FederationError):
            system.query("f", "SELECT * FROM mystery")
