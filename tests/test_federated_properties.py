"""Property-based federation tests: optimizer equivalence on random queries,
plus assorted cross-site coverage (set ops, 3-source merges, clocks)."""

import datetime

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.myriad import MyriadSystem
from repro.schema import union_merge


def build_system():
    sys_ = MyriadSystem()
    a = sys_.add_postgres("a")
    b = sys_.add_oracle("b")
    a.dbms.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, g INTEGER, v FLOAT, "
        "s VARCHAR(4))"
    )
    b.dbms.execute(
        "CREATE TABLE u (id INTEGER PRIMARY KEY, g INTEGER, v NUMBER, "
        "s VARCHAR2(4))"
    )
    labels = ["aa", "bb", "cc", None]
    for owner, table, base in ((a, "t", 0), (b, "u", 500)):
        session = owner.dbms.connect()
        session.begin()
        for i in range(40):
            session.execute(
                f"INSERT INTO {table} VALUES (?, ?, ?, ?)",
                [base + i, i % 5, float(i % 11), labels[i % 4]],
            )
        session.commit()
    a.export_table("t", "rel", ["id", "g", "v", "s"])
    b.export_table("u", "rel", ["id", "g", "v", "s"])
    fed = sys_.create_federation("f")
    fed.add_relation(
        union_merge(
            "m",
            [("a", "rel", ["id", "g", "v", "s"]),
             ("b", "rel", ["id", "g", "v", "s"])],
            source_tag_column="src",
        )
    )
    return sys_


SYSTEM = build_system()  # module-level: read-only under the property tests


def norm(rows):
    normalised = [
        tuple(
            round(float(v), 6)
            if isinstance(v, (int, float)) and not isinstance(v, bool)
            else v
            for v in row
        )
        for row in rows
    ]
    return sorted(
        normalised,
        key=lambda row: tuple((v is None, repr(v)) for v in row),
    )


# ---------------------------------------------------------------------------
# Random predicate grammar
# ---------------------------------------------------------------------------

comparisons = st.one_of(
    st.tuples(
        st.sampled_from(["g", "v", "id"]),
        st.sampled_from(["=", "<", ">", "<=", ">=", "<>"]),
        st.integers(-2, 12),
    ).map(lambda t: f"{t[0]} {t[1]} {t[2]}"),
    st.sampled_from(
        [
            "s IS NULL",
            "s IS NOT NULL",
            "s LIKE 'a%'",
            "g IN (1, 3)",
            "v BETWEEN 2 AND 7",
            "src = 'a'",
        ]
    ),
)


@st.composite
def predicates(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        return draw(comparisons)
    connective = draw(st.sampled_from(["AND", "OR"]))
    left = draw(predicates(depth=depth - 1))
    right = draw(predicates(depth=depth - 1))
    if draw(st.booleans()):
        return f"NOT ({left}) {connective} ({right})"
    return f"({left}) {connective} ({right})"


class TestOptimizerEquivalenceProperty:
    @given(predicates())
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_filter_queries_agree(self, predicate):
        sql = f"SELECT id, g, v, s FROM m WHERE {predicate}"
        reference = SYSTEM.query("f", sql, optimizer="simple")
        for optimizer in ("cost", "cost-nosemijoin"):
            result = SYSTEM.query("f", sql, optimizer=optimizer)
            assert norm(result.rows) == norm(reference.rows), sql

    @given(predicates(), st.sampled_from(["g", "s", "src"]))
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_aggregate_queries_agree(self, predicate, group):
        sql = (
            f"SELECT {group}, COUNT(*), SUM(v), AVG(v) FROM m "
            f"WHERE {predicate} GROUP BY {group}"
        )
        reference = SYSTEM.query("f", sql, optimizer="simple")
        result = SYSTEM.query("f", sql, optimizer="cost")
        assert norm(result.rows) == norm(reference.rows), sql

    @given(
        st.sampled_from(["v", "id", "g"]),
        st.booleans(),
        st.integers(1, 10),
    )
    @settings(max_examples=30, deadline=None)
    def test_topn_queries_agree(self, key, ascending, limit):
        direction = "ASC" if ascending else "DESC"
        sql = f"SELECT id FROM m ORDER BY {key} {direction}, id LIMIT {limit}"
        reference = SYSTEM.query("f", sql, optimizer="simple")
        result = SYSTEM.query("f", sql, optimizer="cost")
        assert result.rows == reference.rows, sql


class TestCrossSiteSetOps:
    def test_intersect_across_sites(self):
        result = SYSTEM.query(
            "f",
            "SELECT g FROM a.rel INTERSECT SELECT g FROM b.rel",
        )
        assert sorted(result.rows) == [(0,), (1,), (2,), (3,), (4,)]

    def test_except_across_sites(self):
        result = SYSTEM.query(
            "f",
            "SELECT id FROM a.rel EXCEPT SELECT id FROM b.rel",
        )
        assert len(result) == 40  # disjoint id ranges

    def test_union_distinct_across_sites(self):
        result = SYSTEM.query(
            "f", "SELECT g FROM a.rel UNION SELECT g FROM b.rel"
        )
        assert len(result) == 5


class TestThreeSourceMerge:
    def test_union_merge_three_sources(self):
        sys_ = MyriadSystem()
        for name in ("x", "y", "z"):
            gateway = sys_.add_postgres(name)
            gateway.dbms.execute("CREATE TABLE t (k INTEGER PRIMARY KEY)")
            gateway.dbms.execute(
                f"INSERT INTO t VALUES ({ord(name)}), ({ord(name) + 100})"
            )
            gateway.export_table("t", "t")
        fed = sys_.create_federation("f")
        fed.add_relation(
            union_merge(
                "allk",
                [(name, "t", ["k"]) for name in ("x", "y", "z")],
                source_tag_column="site",
            )
        )
        result = sys_.query("f", "SELECT COUNT(*) FROM allk")
        assert result.scalar() == 6
        per_site = sys_.query(
            "f", "SELECT site, COUNT(*) FROM allk GROUP BY site ORDER BY site"
        )
        assert per_site.rows == [("x", 2), ("y", 2), ("z", 2)]


class TestClockInjection:
    def test_component_clock_drives_sysdate(self):
        from repro.localdb import OracleDBMS

        frozen = datetime.datetime(1994, 5, 27, 9, 0)
        dbms = OracleDBMS("clocked", clock=lambda: frozen)
        dbms.execute("CREATE TABLE t (d DATE)")
        dbms.execute("INSERT INTO t VALUES (SYSDATE())")
        value = dbms.execute("SELECT d FROM t").scalar()
        assert value == frozen.date()

    def test_default_clock_is_deterministic(self):
        from repro.engine.expressions import DEFAULT_NOW
        from repro.localdb import PostgresDBMS

        dbms = PostgresDBMS("p")
        result = dbms.execute("SELECT NOW()")
        assert result.scalar() == DEFAULT_NOW
