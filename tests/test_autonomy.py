"""Local-autonomy tests.

The paper's first sentence: integrate databases "while preserving the local
autonomy of the component DBMSs and applications."  These tests pin down
what that means operationally:

- local applications keep using their own schemas, names, and transactions,
  oblivious to the federation
- the federation sees *live* data (no copies): local commits are immediately
  visible through integrated relations
- export schemas are a hard boundary: unexported tables/columns/rows are
  invisible to every federation
- local and global transactions coexist under the component's own 2PL
"""

import pytest

from repro.errors import FederationError, GatewayError
from repro.myriad import MyriadSystem


@pytest.fixture
def system():
    sys_ = MyriadSystem()
    gateway = sys_.add_oracle("plant")
    dbms = gateway.dbms
    dbms.execute_script(
        """
        CREATE TABLE parts (
            pno INTEGER PRIMARY KEY,
            pname VARCHAR2(20),
            qty NUMBER,
            cost NUMBER,
            secret_margin NUMBER
        );
        CREATE TABLE internal_audit (id INTEGER PRIMARY KEY, note VARCHAR2(40));
        INSERT INTO parts VALUES (1, 'bolt', 500, 0.1, 0.4);
        INSERT INTO parts VALUES (2, 'nut', 800, 0.05, 0.5);
        INSERT INTO parts VALUES (3, 'gear', 30, 12.0, 0.2);
        """
    )
    # Export only some columns, only in-stock rows; internal_audit not at all.
    gateway.export_table(
        "parts",
        "catalog",
        {"part_no": "pno", "name": "pname", "stock": "qty"},
        predicate="qty > 0",
    )
    fed = sys_.create_federation("supply")
    fed.define_relation(
        "parts_view", "SELECT part_no, name, stock FROM plant.catalog"
    )
    return sys_


class TestLiveness:
    def test_local_commits_visible_immediately(self, system):
        dbms = system.component("plant")
        dbms.execute("INSERT INTO parts VALUES (4, 'cam', 10, 3.0, 0.3)")
        result = system.query(
            "supply", "SELECT name FROM parts_view WHERE part_no = 4"
        )
        assert result.rows == [("cam",)]

    def test_local_apps_use_local_names(self, system):
        """A local application never mentions export names."""
        dbms = system.component("plant")
        session = dbms.connect()
        session.begin()
        session.execute("UPDATE parts SET qty = qty - 5 WHERE pno = 1")
        session.execute(
            "INSERT INTO internal_audit VALUES (1, 'shipped 5 bolts')"
        )
        session.commit()
        stock = system.query(
            "supply", "SELECT stock FROM parts_view WHERE part_no = 1"
        ).scalar()
        assert stock == 495

    def test_export_predicate_hides_rows_dynamically(self, system):
        dbms = system.component("plant")
        dbms.execute("UPDATE parts SET qty = 0 WHERE pno = 3")
        names = system.query("supply", "SELECT name FROM parts_view").column(
            "name"
        )
        assert "gear" not in names
        # the local view still has it
        assert dbms.execute(
            "SELECT COUNT(*) FROM parts WHERE pno = 3"
        ).scalar() == 1


class TestBoundary:
    def test_unexported_table_unreachable(self, system):
        with pytest.raises(FederationError):
            system.federation("supply").define_relation(
                "leak", "SELECT note FROM plant.internal_audit"
            )

    def test_unexported_column_unreachable(self, system):
        with pytest.raises(Exception):
            system.query(
                "supply",
                "SELECT secret_margin FROM parts_view",
            )
        # even via a direct gateway query on the export
        with pytest.raises(Exception):
            system.gateway("plant").execute_query(
                "SELECT secret_margin FROM catalog"
            )

    def test_gateway_rejects_unknown_export(self, system):
        with pytest.raises(GatewayError):
            system.gateway("plant").exports.get("parts")  # local name


class TestCoexistence:
    def test_local_txn_blocks_global_then_proceeds(self, system):
        dbms = system.component("plant")
        local = dbms.connect()
        local.begin()
        local.execute("UPDATE parts SET qty = qty + 1 WHERE pno = 1")

        # An autocommit federation read no longer blocks behind the local
        # writer: it runs on an MVCC snapshot and sees the committed state.
        stock = system.query(
            "supply", "SELECT stock FROM parts_view WHERE part_no = 1"
        ).scalar()
        assert stock == 500

        # A *transactional* federation read still takes 2PL locks, so it
        # times out behind the local writer (the paper's global-deadlock
        # signal) — local autonomy keeps priority.
        from repro.errors import GatewayTimeout

        gateway = system.gateway("plant")
        gateway.begin("g-read")
        with pytest.raises(GatewayTimeout):
            gateway.execute_query(
                "SELECT * FROM catalog", timeout=0.05, global_id="g-read"
            )
        gateway.abort("g-read")

        local.commit()
        result = system.query(
            "supply", "SELECT stock FROM parts_view WHERE part_no = 1"
        )
        assert result.scalar() == 501

    def test_global_txn_blocks_local_then_proceeds(self, system):
        txn = system.begin_transaction()
        txn.execute(
            "plant", "UPDATE catalog SET stock = stock + 1 WHERE part_no = 1"
        )

        dbms = system.component("plant")
        local = dbms.connect()
        local.lock_timeout = 0.05
        local.begin()
        from repro.errors import LockTimeoutError

        with pytest.raises(LockTimeoutError):
            local.execute("UPDATE parts SET qty = 0 WHERE pno = 2")

        txn.commit()
        # local world continues unharmed
        dbms.execute("UPDATE parts SET qty = 123 WHERE pno = 2")
        assert dbms.execute(
            "SELECT qty FROM parts WHERE pno = 2"
        ).scalar() == 123

    def test_component_counts_its_own_transactions(self, system):
        dbms = system.component("plant")
        before = dbms.transactions.commits
        dbms.execute("INSERT INTO internal_audit VALUES (9, 'x')")
        assert dbms.transactions.commits == before + 1
