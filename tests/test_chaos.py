"""Chaos explorer tests: crash-point enumeration, targeted coordinator and
participant crashes, invariant auditing, and the 1PC durability regression."""

import pytest

from repro.chaos import (
    CoordinatorCrash,
    check_invariants,
    enumerate_crash_points,
    run_crash,
    run_sweep,
)
from repro.txn import GlobalTxnState
from repro.workloads import build_bank_sites


class TestEnumeration:
    def test_2pc_points_cover_the_whole_protocol(self):
        points = enumerate_crash_points("2pc")
        assert points[0] == "before_coord_begin_2pc"
        assert points[-1] == "before_coord_end"
        for site in ("b0", "b1", "b2"):
            assert f"before_prepare:{site}" in points
            assert f"after_vote:{site}" in points
            assert f"before_deliver:{site}" in points
            assert f"after_deliver:{site}" in points
        assert "before_coord_commit" in points
        assert "after_coord_commit" in points
        assert len(points) >= 15

    def test_1pc_points_cover_the_fast_path(self):
        points = enumerate_crash_points("1pc")
        assert "before_coord_commit" in points
        assert "after_coord_commit" in points
        assert "before_deliver:b0" in points
        # no prepare phase on the one-phase path
        assert not any(p.startswith("before_prepare") for p in points)

    def test_points_fire_in_protocol_order(self):
        points = enumerate_crash_points("2pc")
        assert points.index("after_coord_begin_2pc") < points.index(
            "before_prepare:b0"
        )
        assert points.index("after_vote:b2") < points.index("before_coord_commit")
        assert points.index("after_coord_commit") < points.index(
            "before_deliver:b0"
        )


class TestCoordinatorCrash:
    def test_crash_before_durable_commit_presumes_abort(self):
        run = run_crash("coordinator", "before_coord_commit", 0, "2pc")
        assert run.ok, run.violations
        assert run.app_outcome == "crash"
        assert run.decision == "abort"
        # all three prepared branches were rolled back by recovery
        assert {site for _, site, _ in run.recovered} == {"b0", "b1", "b2"}
        assert all(action == "abort" for _, _, action in run.recovered)

    def test_crash_after_durable_commit_redelivers_commit(self):
        run = run_crash("coordinator", "after_coord_commit", 0, "2pc")
        assert run.ok, run.violations
        assert run.decision == "commit"
        assert {site for _, site, _ in run.recovered} == {"b0", "b1", "b2"}
        assert all(action == "commit" for _, _, action in run.recovered)

    def test_crash_mid_delivery_finishes_the_remaining_sites(self):
        run = run_crash("coordinator", "before_deliver:b1", 0, "2pc")
        assert run.ok, run.violations
        assert run.decision == "commit"
        # b0 already had its commit; recovery must reach b1 and b2
        sites = {site for _, site, _ in run.recovered}
        assert "b1" in sites and "b2" in sites

    def test_crash_before_any_protocol_record(self):
        run = run_crash("coordinator", "before_coord_begin_2pc", 0, "2pc")
        assert run.ok, run.violations
        assert run.decision == "abort"

    def test_1pc_crash_before_commit_record_aborts(self):
        """The closed durability gap: pre-fix, the application could observe
        COMMITTED without any durable decision on this path."""
        run = run_crash("coordinator", "before_coord_commit", 0, "1pc")
        assert run.ok, run.violations
        assert run.app_outcome == "crash"
        assert run.decision == "abort"

    def test_runs_are_deterministic(self):
        a = run_crash("coordinator", "after_vote:b1", 4, "2pc")
        b = run_crash("coordinator", "after_vote:b1", 4, "2pc")
        assert (a.app_outcome, a.decision, a.recovered) == (
            b.app_outcome,
            b.decision,
            b.recovered,
        )


class TestParticipantCrash:
    def test_crash_before_prepare_forces_abort(self):
        # seed=1 → victim b1; its lost PREPARE counts as a NO vote
        run = run_crash("participant", "before_prepare:b1", 1, "2pc")
        assert run.ok, run.violations
        assert run.app_outcome == "aborted"
        assert run.decision == "abort"
        assert ("G1", "b1", "abort") in run.recovered

    def test_crash_during_delivery_parks_then_recovers_commit(self):
        run = run_crash("participant", "before_deliver:b1", 1, "2pc")
        assert run.ok, run.violations
        assert run.app_outcome == "committed"
        assert run.decision == "commit"
        assert ("G1", "b1", "commit") in run.recovered

    def test_crash_after_everything_needs_no_recovery(self):
        run = run_crash("participant", "before_coord_end", 1, "2pc")
        assert run.ok, run.violations
        assert run.app_outcome == "committed"

    def test_unknown_role_rejected(self):
        with pytest.raises(ValueError):
            run_crash("bystander", "before_coord_commit", 0, "2pc")


class TestSweep:
    def test_mini_sweep_holds_all_invariants(self):
        report = run_sweep(seeds=range(3))
        assert report.ok, report.render()
        # 3 seeds × 2 roles × (17 2pc + 5 1pc points)
        points_2pc = len(enumerate_crash_points("2pc"))
        points_1pc = len(enumerate_crash_points("1pc"))
        assert len(report.runs) == 3 * 2 * (points_2pc + points_1pc)
        assert report.points("2pc", "coordinator") == sorted(
            enumerate_crash_points("2pc")
        )
        rendered = report.render()
        assert "RESULT: PASS" in rendered
        assert "zero invariant violations" in rendered

    def test_summary_aggregates_by_mode_and_role(self):
        report = run_sweep(seeds=[0], modes=("1pc",))
        rows = {(r["mode"], r["role"]): r for r in report.summary()}
        assert rows[("1pc", "coordinator")]["runs"] == 5
        # the coordinator died mid-protocol in every run: no outcome seen
        assert rows[("1pc", "coordinator")]["crash"] == 5
        # participant crashes never stop the coordinator from committing
        assert rows[("1pc", "participant")]["committed"] == 5


class TestInvariantChecker:
    def test_detects_a_lost_committed_transaction(self):
        """The checker must not be vacuous: an application-visible COMMITTED
        with no durable decision is flagged."""
        system = build_bank_sites(3, 4, query_timeout=1.0)
        violations = check_invariants(
            system, "2pc", 0, app_outcome="committed", global_id="G1"
        )
        assert any("lost committed" in v for v in violations)
        system.close()

    def test_clean_system_has_no_violations(self):
        system = build_bank_sites(3, 4, query_timeout=1.0)
        violations = check_invariants(
            system, "2pc", 0, app_outcome="aborted", global_id="G1"
        )
        assert violations == []
        system.close()


class TestOnePhaseSilentLoss:
    def test_orphan_scan_recovers_silently_lost_commit(self):
        """Regression for the 1PC durability fix end to end: the gateway
        swallows the commit (coordinator believes it delivered — no error,
        nothing parked), so only the durable COORD_COMMIT plus the orphan
        scan of recover_in_doubt can finish the branch."""
        system = build_bank_sites(3, 4, query_timeout=1.0)
        txn = system.begin_transaction()
        txn.execute(
            "b0", "UPDATE account SET balance = balance + 1 WHERE acct = 0"
        )
        system.gateways["b0"].drop_next_commits = 1
        txn.commit()
        assert txn.state is GlobalTxnState.COMMITTED
        # the fix: the decision was durable *before* delivery was attempted
        decisions = system.transactions.wal.coordinator_decisions()
        assert decisions[txn.global_id] == "commit"
        # nothing was parked — the loss was silent
        assert system.transactions.wal.pending_deliveries() == {}
        assert system.gateways["b0"].branch_states() == {txn.global_id: "active"}

        actions = system.transactions.recover_in_doubt()
        assert (txn.global_id, "b0", "commit") in actions
        assert system.gateways["b0"].branch_states() == {}
        value = system.query(
            "bank", "SELECT balance FROM accounts WHERE acct = 0"
        ).scalar()
        assert float(value) == 1001.0
        system.close()
