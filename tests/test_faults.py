"""Fault-injection tests: drop rules, crashes, partitions, and the hardened
2PC decision-delivery path (retry, durable parking, recovery draining)."""

import pytest

from repro.errors import (
    MessageDropped,
    TransactionAborted,
    TwoPhaseCommitError,
)
from repro.net import FaultInjector, Network
from repro.txn import GlobalTxnState
from repro.workloads import build_bank_sites, total_balance


def make_network(seed: int = 1) -> Network:
    net = Network(faults=FaultInjector(seed=seed))
    for site in ("a", "b", "c"):
        net.add_site(site)
    return net


class TestFaultInjector:
    def test_drop_next_scoped_by_purpose(self):
        net = make_network()
        net.faults.drop_next(1, purpose="commit")
        assert net.send("a", "b", 10, "query") > 0  # other purposes flow
        with pytest.raises(MessageDropped):
            net.send("a", "b", 10, "commit")
        # the rule is spent
        assert net.send("a", "b", 10, "commit") > 0

    def test_drop_next_scoped_by_link(self):
        net = make_network()
        net.faults.drop_next(2, source="a", destination="b")
        assert net.send("a", "c", 10, "query") > 0
        with pytest.raises(MessageDropped):
            net.send("a", "b", 10, "query")
        with pytest.raises(MessageDropped):
            net.send("a", "b", 10, "result")
        assert net.send("a", "b", 10, "query") > 0

    def test_drop_rate_is_seed_deterministic(self):
        def losses(seed):
            net = make_network(seed)
            net.faults.drop_rate(0.5, purpose="query")
            lost = 0
            for _ in range(50):
                try:
                    net.send("a", "b", 10, "query")
                except MessageDropped:
                    lost += 1
            return lost

        assert losses(3) == losses(3)
        assert 0 < losses(3) < 50

    def test_crash_and_restart(self):
        net = make_network()
        net.faults.crash_site("b")
        with pytest.raises(MessageDropped):
            net.send("a", "b", 10, "query")
        with pytest.raises(MessageDropped):
            net.send("b", "a", 10, "result")
        assert net.send("a", "c", 10, "query") > 0
        net.faults.restart_site("b")
        assert net.send("a", "b", 10, "query") > 0

    def test_restart_clears_site_scoped_one_shot_rules(self):
        """A restarted site must not inherit stale one-shot losses queued
        against its previous incarnation."""
        net = make_network()
        net.faults.drop_next(5, destination="b")
        net.faults.drop_next(1, source="b", purpose="vote")
        net.faults.drop_next(1, destination="c", purpose="commit")
        net.faults.restart_site("b")
        assert net.send("a", "b", 10, "query") > 0
        assert net.send("b", "a", 10, "vote") > 0
        # rules scoped to other sites are untouched
        with pytest.raises(MessageDropped):
            net.send("a", "c", 10, "commit")

    def test_restart_keeps_unlimited_link_rules(self):
        # drop_rate models the *link*, not the site: it survives a reboot
        net = make_network()
        net.faults.drop_rate(1.0, destination="b")
        net.faults.restart_site("b")
        with pytest.raises(MessageDropped):
            net.send("a", "b", 10, "query")

    def test_restart_does_not_heal_partitions(self):
        # a restart reboots the site; it does not re-cable the network
        net = make_network()
        net.faults.partition(["a"], ["b", "c"])
        net.faults.crash_site("b")
        net.faults.restart_site("b")
        with pytest.raises(MessageDropped):
            net.send("a", "b", 10, "query")
        assert net.send("b", "c", 10, "query") > 0  # same side, rebooted
        net.faults.heal()
        assert net.send("a", "b", 10, "query") > 0

    def test_partition_and_heal(self):
        net = make_network()
        net.faults.partition(["a"], ["b", "c"])
        with pytest.raises(MessageDropped):
            net.send("a", "b", 10, "query")
        with pytest.raises(MessageDropped):
            net.send("c", "a", 10, "query")
        assert net.send("b", "c", 10, "query") > 0  # same side
        net.faults.heal()
        assert net.send("a", "b", 10, "query") > 0

    def test_oneway_partition_cuts_a_single_direction(self):
        # the classic asymmetric link: a hears b, b never hears a
        net = make_network()
        net.faults.partition_oneway(["a"], ["b"])
        with pytest.raises(MessageDropped):
            net.send("a", "b", 10, "query")
        assert net.send("b", "a", 10, "query") > 0  # reverse path delivers
        assert net.send("a", "c", 10, "query") > 0  # other links untouched

    def test_oneway_partitions_compose_into_a_symmetric_cut(self):
        net = make_network()
        net.faults.partition_oneway(["a"], ["b"])
        net.faults.partition_oneway(["b"], ["a"])
        with pytest.raises(MessageDropped):
            net.send("a", "b", 10, "query")
        with pytest.raises(MessageDropped):
            net.send("b", "a", 10, "query")

    def test_heal_clears_oneway_cuts(self):
        net = make_network()
        net.faults.partition_oneway(["a"], ["b", "c"])
        with pytest.raises(MessageDropped):
            net.send("a", "c", 10, "query")
        net.faults.heal()
        assert net.send("a", "c", 10, "query") > 0

    def test_drops_are_accounted(self):
        net = make_network()
        net.faults.drop_next(1, purpose="commit")
        with pytest.raises(MessageDropped):
            net.send("a", "b", 10, "commit")
        assert net.dropped_messages == 1
        assert net.total_messages == 0  # dropped ≠ delivered
        (record,) = net.faults.dropped
        assert (record.source, record.destination) == ("a", "b")
        assert record.purpose == "commit"


@pytest.fixture
def bank():
    system = build_bank_sites(3, 4, query_timeout=1.0)
    system.inject_faults(seed=7)
    return system


def transfer(system):
    """Open a 3-branch global transaction moving 10 from b0 to b1."""
    txn = system.begin_transaction()
    txn.execute("b0", "UPDATE account SET balance = balance - 10 WHERE acct = 0")
    txn.execute("b1", "UPDATE account SET balance = balance + 10 WHERE acct = 4")
    txn.execute("b2", "UPDATE account SET balance = balance + 0 WHERE acct = 8")
    return txn


def balances(system):
    acct0 = system.query(
        "bank", "SELECT balance FROM accounts WHERE acct = 0"
    ).scalar()
    acct4 = system.query(
        "bank", "SELECT balance FROM accounts WHERE acct = 4"
    ).scalar()
    return float(acct0), float(acct4)


class TestDecisionRetry:
    def test_single_dropped_commit_is_retried(self, bank):
        txn = transfer(bank)
        bank.network.faults.drop_next(1, destination="b1", purpose="commit")
        txn.commit()
        assert txn.state is GlobalTxnState.COMMITTED
        assert bank.transactions.decision_retries >= 1
        assert bank.transactions.decisions_parked == 0
        assert bank.gateways["b1"].prepared_branches() == []
        assert balances(bank) == (990.0, 1010.0)

    def test_retry_backoff_charged_to_trace(self, bank):
        txn = transfer(bank)
        before = txn.trace.elapsed_s
        bank.network.faults.drop_next(2, destination="b1", purpose="commit")
        txn.commit()
        gtm = bank.transactions
        backoff = gtm.decision_retry_backoff_s * (1 + 2)  # 2 retries: 1x + 2x
        assert txn.trace.elapsed_s - before >= backoff

    def test_dropped_commit_ack_is_idempotent(self, bank):
        """Decision applied, ack lost: the retry must not double-commit."""
        txn = transfer(bank)
        bank.network.faults.drop_next(1, source="b1", purpose="ack")
        txn.commit()
        assert txn.state is GlobalTxnState.COMMITTED
        assert bank.transactions.decisions_parked == 0
        assert balances(bank) == (990.0, 1010.0)


class TestParkingAndRecovery:
    def test_lost_commit_parked_then_recovered(self, bank):
        txn = transfer(bank)
        faults = bank.network.faults
        faults.drop_next(10**6, destination="b1", purpose="commit")
        txn.commit()  # must not raise: decision is durable
        assert txn.state is GlobalTxnState.COMMITTED
        assert bank.transactions.decisions_parked == 1
        assert bank.gateways["b1"].prepared_branches() == [txn.global_id]
        assert bank.transactions.wal.pending_deliveries() == {
            (txn.global_id, "b1"): "commit"
        }
        # While b1 stays unreachable, recovery keeps the decision parked.
        actions = bank.transactions.recover_in_doubt()
        assert (txn.global_id, "b1", "commit") not in actions
        assert bank.gateways["b1"].prepared_branches() == [txn.global_id]
        # Heal the network: recovery drains the pending-delivery list.
        faults.clear()
        actions = bank.transactions.recover_in_doubt()
        assert (txn.global_id, "b1", "commit") in actions
        assert bank.gateways["b1"].prepared_branches() == []
        assert bank.transactions.wal.pending_deliveries() == {}
        assert bank.transactions.decisions_recovered == 1
        assert balances(bank) == (990.0, 1010.0)
        assert total_balance(bank) == 12000.0

    def test_lost_abort_parked_then_recovered(self, bank):
        txn = transfer(bank)
        faults = bank.network.faults
        faults.drop_next(10**6, destination="b2", purpose="abort")
        txn.abort()
        assert txn.state is GlobalTxnState.ABORTED
        assert bank.transactions.wal.pending_deliveries() == {
            (txn.global_id, "b2"): "abort"
        }
        faults.clear()
        actions = bank.transactions.recover_in_doubt()
        assert (txn.global_id, "b2", "abort") in actions
        assert bank.transactions.wal.pending_deliveries() == {}
        assert total_balance(bank) == 12000.0

    def test_parked_delivery_survives_coordinator_crash(self, bank):
        """The pending-delivery list is durable: a crash that drops the
        coordinator's volatile state must not lose the parked decision."""
        txn = transfer(bank)
        faults = bank.network.faults
        faults.drop_next(10**6, destination="b1", purpose="commit")
        txn.commit()
        # Coordinator crash: volatile dict gone, durable WAL survives.
        bank.transactions.pending_deliveries.clear()
        bank.transactions.wal.simulate_crash()
        faults.clear()
        actions = bank.transactions.recover_in_doubt()
        assert (txn.global_id, "b1", "commit") in actions
        assert balances(bank) == (990.0, 1010.0)

    def test_lost_prepare_counts_as_vote_no(self, bank):
        txn = transfer(bank)
        bank.network.faults.drop_next(1, destination="b1", purpose="prepare")
        with pytest.raises(TwoPhaseCommitError):
            txn.commit()
        assert txn.state is GlobalTxnState.ABORTED
        assert total_balance(bank) == 12000.0
        for gateway in bank.gateways.values():
            assert gateway.prepared_branches() == []

    def test_lost_vote_counts_as_vote_no(self, bank):
        """The vote is lost *after* the branch prepared: presumed abort must
        still roll the prepared branch back."""
        txn = transfer(bank)
        bank.network.faults.drop_next(1, source="b1", purpose="vote")
        with pytest.raises(TwoPhaseCommitError):
            txn.commit()
        assert txn.state is GlobalTxnState.ABORTED
        assert total_balance(bank) == 12000.0
        for gateway in bank.gateways.values():
            assert gateway.prepared_branches() == []

    def test_crashed_site_aborts_and_recovers_after_restart(self, bank):
        txn = transfer(bank)
        faults = bank.network.faults
        faults.crash_site("b1")
        with pytest.raises(TwoPhaseCommitError):
            txn.commit()
        assert txn.state is GlobalTxnState.ABORTED
        # b1's abort decision could not be delivered: parked.
        assert (txn.global_id, "b1") in bank.transactions.wal.pending_deliveries()
        faults.restart_site("b1")
        actions = bank.transactions.recover_in_doubt()
        assert (txn.global_id, "b1", "abort") in actions
        assert total_balance(bank) == 12000.0

    def test_one_phase_commit_loss_is_parked(self, bank):
        """Even the ≤1-participant fast path must not strand a branch."""
        faults = bank.network.faults
        txn = bank.begin_transaction()
        txn.execute("b0", "UPDATE account SET balance = balance + 1 WHERE acct = 0")
        faults.drop_next(10**6, destination="b0", purpose="commit")
        txn.commit()
        assert txn.state is GlobalTxnState.COMMITTED
        assert bank.transactions.wal.pending_deliveries() == {
            (txn.global_id, "b0"): "commit"
        }
        faults.clear()
        bank.transactions.recover_in_doubt()
        value = bank.query(
            "bank", "SELECT balance FROM accounts WHERE acct = 0"
        ).scalar()
        assert float(value) == 1001.0


class TestExecutionFaults:
    def test_unreachable_site_aborts_global_txn(self, bank):
        txn = bank.begin_transaction()
        txn.execute("b0", "UPDATE account SET balance = 0 WHERE acct = 0")
        bank.network.faults.partition(["federation", "b0", "b2"], ["b1"])
        with pytest.raises(TransactionAborted) as exc:
            txn.execute("b1", "UPDATE account SET balance = 0 WHERE acct = 4")
        assert exc.value.reason == "network"
        assert txn.state is GlobalTxnState.ABORTED
        bank.network.faults.heal()
        assert total_balance(bank) == 12000.0

    def test_transactional_query_network_abort(self, bank):
        txn = bank.begin_transaction()
        # Persistent loss: a single dropped begin would just be retried.
        bank.network.faults.drop_next(10**6, purpose="begin")
        with pytest.raises(TransactionAborted) as exc:
            bank.transactional_query(
                txn, "bank", "SELECT SUM(balance) FROM accounts"
            )
        assert exc.value.reason == "network"
        assert txn.state is GlobalTxnState.ABORTED


class TestFaultEvents:
    def test_restart_emits_event(self, bank):
        bank.network.faults.crash_site("b1")
        bank.network.faults.restart_site("b1")
        (event,) = bank.events.of_type("fault.restart")
        assert event.fields["site"] == "b1"

    def test_partition_events_carry_the_direction(self, bank):
        bank.network.faults.partition(["b0"], ["b1"])
        bank.network.faults.partition_oneway(["b1"], ["b2"])
        both, oneway = bank.events.of_type("fault.partition")
        assert both.fields["direction"] == "both"
        assert oneway.fields["direction"] == "a->b"
        assert oneway.fields["group_a"] == ["b1"]
        bank.network.faults.heal()
        (heal,) = bank.events.of_type("fault.heal")
        assert heal.fields["cuts"] == 3  # two directed cuts + one one-way
