"""Global query processing tests: localization, optimizers, execution."""

import pytest

from repro.myriad import MyriadSystem
from repro.schema import union_merge


@pytest.fixture
def system():
    sys_ = MyriadSystem()
    a = sys_.add_postgres("a")
    b = sys_.add_oracle("b")
    c = sys_.add_postgres("c")
    a.dbms.execute(
        "CREATE TABLE emp_a (id INTEGER PRIMARY KEY, name VARCHAR(20), "
        "sal FLOAT, dept INTEGER)"
    )
    b.dbms.execute(
        "CREATE TABLE emp_b (id INTEGER PRIMARY KEY, name VARCHAR2(20), "
        "sal NUMBER, dept INTEGER)"
    )
    c.dbms.execute(
        "CREATE TABLE dept_c (dno INTEGER PRIMARY KEY, dname VARCHAR(20))"
    )
    for i in range(20):
        a.dbms.execute(
            f"INSERT INTO emp_a VALUES ({i}, 'A{i}', {1000 + i * 100}, {i % 5})"
        )
        b.dbms.execute(
            f"INSERT INTO emp_b VALUES ({100 + i}, 'B{i}', {1500 + i * 100}, {i % 5})"
        )
    for d in range(5):
        c.dbms.execute(f"INSERT INTO dept_c VALUES ({d}, 'DEPT{d}')")
    a.export_table("emp_a", "emp", {"id": "id", "name": "name", "sal": "sal", "dept": "dept"})
    b.export_table("emp_b", "emp", {"id": "id", "name": "name", "sal": "sal", "dept": "dept"})
    c.export_table("dept_c", "dept")
    fed = sys_.create_federation("f")
    fed.add_relation(
        union_merge(
            "all_emp",
            [("a", "emp", ["id", "name", "sal", "dept"]),
             ("b", "emp", ["id", "name", "sal", "dept"])],
            source_tag_column="src",
        )
    )
    fed.define_relation("depts", "SELECT dno, dname FROM c.dept")
    return sys_


ANSWER_QUERIES = [
    "SELECT COUNT(*) FROM all_emp",
    "SELECT name FROM all_emp WHERE sal > 3000 ORDER BY name",
    "SELECT src, COUNT(*), AVG(sal) FROM all_emp GROUP BY src ORDER BY src",
    "SELECT e.name, d.dname FROM all_emp e JOIN depts d ON e.dept = d.dno "
    "WHERE d.dname = 'DEPT3' ORDER BY e.name",
    "SELECT dept, MAX(sal) FROM all_emp GROUP BY dept HAVING COUNT(*) > 2 "
    "ORDER BY dept",
    "SELECT DISTINCT dept FROM all_emp ORDER BY dept",
    "SELECT name FROM all_emp WHERE dept IN "
    "(SELECT dno FROM depts WHERE dname LIKE 'DEPT1%') ORDER BY name",
    "SELECT name FROM all_emp WHERE sal > 2000 AND src = 'a' ORDER BY name",
    "SELECT e.src, d.dname, COUNT(*) AS n FROM all_emp e "
    "JOIN depts d ON e.dept = d.dno GROUP BY e.src, d.dname "
    "ORDER BY n DESC, d.dname, e.src LIMIT 5",
    "SELECT name FROM all_emp WHERE sal BETWEEN 2000 AND 2500 ORDER BY name",
]


def _norm_row(row):
    """Numeric-type-insensitive comparison key (int 3000 ≡ float 3000.0)."""
    return tuple(
        round(float(v), 9)
        if isinstance(v, (int, float)) and not isinstance(v, bool)
        else v
        for v in row
    )


class TestOptimizerEquivalence:
    """E1's core property: every optimizer returns identical answers."""

    @pytest.mark.parametrize("sql", ANSWER_QUERIES)
    def test_simple_vs_cost_vs_nosemijoin(self, system, sql):
        reference = system.query("f", sql, optimizer="simple")
        for optimizer in ("cost", "cost-nosemijoin", "cost-noaggpush"):
            result = system.query("f", sql, optimizer=optimizer)
            assert result.columns == reference.columns
            assert sorted(map(_norm_row, result.rows)) == sorted(
                map(_norm_row, reference.rows)
            ), f"{optimizer} differs on {sql}"


class TestPushdown:
    def test_selection_pushdown_reduces_bytes(self, system):
        sql = "SELECT name FROM all_emp WHERE sal > 2900"
        simple = system.query("f", sql, optimizer="simple")
        cost = system.query("f", sql, optimizer="cost")
        assert cost.bytes_shipped < simple.bytes_shipped

    def test_projection_pruning_reduces_bytes(self, system):
        sql = "SELECT name FROM all_emp"
        simple = system.query("f", sql, optimizer="simple")
        cost = system.query("f", sql, optimizer="cost")
        assert cost.bytes_shipped < simple.bytes_shipped

    def test_pushed_predicate_visible_in_plan(self, system):
        plan = system.processor("f").plan(
            "SELECT name FROM all_emp WHERE sal > 2900", "cost"
        )
        assert any(fetch.predicate is not None for fetch in plan.fetches)

    def test_simple_plan_ships_everything(self, system):
        plan = system.processor("f").plan(
            "SELECT name FROM all_emp WHERE sal > 2900", "simple"
        )
        assert all(fetch.predicate is None for fetch in plan.fetches)
        assert all(len(fetch.columns) == 4 for fetch in plan.fetches)

    def test_plan_describes_itself(self, system):
        text = system.explain("f", "SELECT name FROM all_emp", "cost")
        assert "GlobalPlan[cost]" in text
        assert "fetch #" in text
        assert "residual:" in text


class TestExecutionAccounting:
    def test_trace_counts_messages(self, system):
        result = system.query("f", "SELECT COUNT(*) FROM all_emp")
        # two fetches: 2 requests + 2 replies
        assert result.trace.message_count == 4
        assert result.fetched_rows > 0
        assert result.elapsed_s > 0

    def test_parallel_fetches_cheaper_than_sum(self, system):
        result = system.query("f", "SELECT COUNT(*) FROM all_emp", "simple")
        total = sum(record.cost_s for record in result.trace.records)
        assert result.elapsed_s < total  # parallelism helped

    def test_result_helpers(self, system):
        result = system.query("f", "SELECT COUNT(*) FROM all_emp")
        assert result.scalar() == 40
        assert len(result) == 1
        assert list(result.to_dicts()[0].values()) == [40]

    def test_estimated_cost_close_to_measured(self, system):
        """The cost model and execution accounting share the same units."""
        processor = system.processor("f")
        plan = processor.plan("SELECT name, sal FROM all_emp", "cost")
        result = processor.executor.execute(plan)
        assert plan.estimated_cost_s == pytest.approx(
            result.elapsed_s, rel=0.5
        )


class TestHeterogeneousAnswers:
    def test_same_rows_from_both_dialects(self, system):
        """E6: identical data behind Oracle and Postgres dialects merge cleanly."""
        result = system.query(
            "f",
            "SELECT src, MIN(sal), MAX(sal) FROM all_emp GROUP BY src ORDER BY src",
        )
        (src_a, min_a, max_a), (src_b, min_b, max_b) = result.rows
        assert (src_a, min_a, max_a) == ("a", 1000.0, 2900.0)
        assert (src_b, min_b, max_b) == ("b", 1500.0, 3400.0)

    def test_global_dml_rejected_by_processor(self, system):
        from repro.errors import FederationError

        with pytest.raises(FederationError):
            system.query("f", "DELETE FROM all_emp")
