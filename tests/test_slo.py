"""Windowed metrics, SLO burn-rate alerting, tail sampling, request ids.

The PR-8 telemetry layer end to end: the ring-of-buckets
:class:`~repro.obs.window.WindowedMetrics` on the simulated clock, the
bounded histogram reservoirs in :class:`~repro.obs.metrics.MetricsRegistry`,
multi-window burn-rate :class:`~repro.obs.slo.SLO` alerting with
``slo.burn`` events, tail-based trace sampling, and the request-id
correlation contract (one stable id across spans, events, message records,
EXPLAIN ANALYZE, and debug bundles).
"""

import json

import pytest

from repro.obs import SLO, BurnRateRule, MetricsRegistry, Observability
from repro.obs.export import (
    load_debug_bundle,
    metrics_to_prometheus,
    spans_to_chrome_trace,
    validate_prometheus_text,
)
from repro.obs.introspect import (
    federation_stats,
    introspection_snapshot,
    render_dashboard,
)
from repro.obs.window import WindowedMetrics
from repro.workloads import build_bank_sites, build_two_site_join

JOIN_SQL = (
    "SELECT lhs.k, rhs.val FROM lhs, rhs "
    "WHERE lhs.k = rhs.k AND lhs.flt < 0.5"
)


class ManualClock:
    """A settable simulated clock for window/SLO unit tests."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


# ---------------------------------------------------------------------------
# Windowed metrics
# ---------------------------------------------------------------------------


class TestWindowedMetrics:
    def test_counts_and_rate_inside_window(self):
        clock = ManualClock()
        window = WindowedMetrics(bucket_s=1.0, bucket_count=10, clock=clock)
        for _ in range(5):
            window.inc("query.requests", federation="bank")
        clock.now = 3.0
        window.inc("query.requests", federation="bank")
        assert window.count("query.requests", federation="bank") == 6
        assert window.rate("query.requests", federation="bank") == 6 / 10.0
        # A narrower read only sees the recent bucket.
        assert window.count(
            "query.requests", window_s=2.0, federation="bank"
        ) == 1

    def test_old_buckets_age_out(self):
        clock = ManualClock()
        window = WindowedMetrics(bucket_s=0.5, bucket_count=4, clock=clock)
        window.inc("q")
        clock.now = 10.0  # far past the 2s window
        assert window.count("q") == 0
        assert window.total("q") == 0.0
        assert window.summary("q") is None

    def test_summary_exact_aggregates(self):
        clock = ManualClock()
        window = WindowedMetrics(bucket_s=1.0, bucket_count=10, clock=clock)
        for value in (0.010, 0.020, 0.030, 0.040):
            window.observe("lat", value)
        summary = window.summary("lat")
        assert summary["count"] == 4.0
        assert summary["min"] == pytest.approx(0.010)
        assert summary["max"] == pytest.approx(0.040)
        assert summary["mean"] == pytest.approx(0.025)
        assert summary["p99"] == pytest.approx(0.040)

    def test_per_bucket_samples_are_bounded(self):
        clock = ManualClock()
        window = WindowedMetrics(
            bucket_s=1.0, bucket_count=4, samples_per_bucket=8, clock=clock
        )
        for index in range(10_000):
            window.observe("lat", float(index))
        summary = window.summary("lat")
        # Exact aggregates survive; retained samples stay capped.
        assert summary["count"] == 10_000.0
        assert summary["max"] == 9999.0
        (ring,) = window._series.values()
        assert all(len(bucket.samples) <= 8 for bucket in ring)

    def test_ring_is_bounded_over_time(self):
        clock = ManualClock()
        window = WindowedMetrics(bucket_s=1.0, bucket_count=5, clock=clock)
        for second in range(1000):
            clock.now = float(second)
            window.observe("lat", 1.0)
        (ring,) = window._series.values()
        assert len(ring) == 5

    def test_label_sets_sorted(self):
        window = WindowedMetrics(bucket_s=1.0, bucket_count=4)
        window.inc("site.requests", site="b1")
        window.inc("site.requests", site="b0")
        assert window.label_sets("site.requests") == [
            {"site": "b0"},
            {"site": "b1"},
        ]
        assert window.label_sets("nothing") == []

    def test_disabled_window_is_noop(self):
        window = WindowedMetrics(enabled=False)
        window.inc("q")
        window.observe("lat", 1.0)
        assert window.series_count() == 0
        assert window.count("q") == 0

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            WindowedMetrics(bucket_s=0.0)
        with pytest.raises(ValueError):
            WindowedMetrics(bucket_count=0)


# ---------------------------------------------------------------------------
# Bounded histogram reservoirs
# ---------------------------------------------------------------------------


class TestHistogramReservoir:
    def test_exact_aggregates_with_bounded_samples(self):
        registry = MetricsRegistry(histogram_cap=64)
        for index in range(5000):
            registry.observe("lat", float(index))
        summary = registry.histogram_summary("lat")
        assert summary["count"] == 5000.0
        assert summary["min"] == 0.0
        assert summary["max"] == 4999.0
        assert summary["mean"] == pytest.approx(2499.5)
        hist = registry._histograms[("lat", ())]
        assert len(hist.samples) == 64
        # Reservoir percentiles approximate the true distribution.
        assert 3000.0 < summary["p95"] <= 4999.0

    def test_reservoir_is_deterministic(self):
        def fill():
            registry = MetricsRegistry(histogram_cap=32)
            for index in range(1000):
                registry.observe("lat", float(index), site="b0")
            return registry.histogram_summary("lat", site="b0")

        assert fill() == fill()

    def test_exact_below_cap(self):
        registry = MetricsRegistry(histogram_cap=512)
        for value in (3.0, 1.0, 2.0):
            registry.observe("lat", value)
        summary = registry.histogram_summary("lat")
        assert summary["p50"] == 2.0
        assert summary["p99"] == 3.0

    def test_histogram_series_consistent_snapshot(self):
        registry = MetricsRegistry()
        registry.observe("a", 1.0)
        registry.observe("b", 2.0, site="x")
        series = registry.histogram_series()
        assert [(name, labels) for name, labels, _ in series] == [
            ("a", {}),
            ("b", {"site": "x"}),
        ]
        assert series[0][2]["count"] == 1.0

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            MetricsRegistry(histogram_cap=0)


# ---------------------------------------------------------------------------
# SLOs and burn-rate alerting
# ---------------------------------------------------------------------------


def _obs_with_slo(**slo_kwargs):
    clock = ManualClock()
    obs = Observability()
    obs.bind_clock(clock)
    slo_kwargs.setdefault("objective", 0.9)
    slo_kwargs.setdefault("rules", (BurnRateRule(10.0, 2.0, 2.0),))
    slo = obs.add_slo("avail", **slo_kwargs)
    return obs, slo, clock


class TestSLO:
    def test_validation(self):
        with pytest.raises(ValueError):
            SLO("bad", objective=1.5)
        with pytest.raises(ValueError):
            SLO("bad", kind="throughput")
        with pytest.raises(ValueError):
            SLO("bad", kind="latency")  # needs threshold_s
        with pytest.raises(ValueError):
            BurnRateRule(long_s=1.0, short_s=2.0, factor=1.0)
        with pytest.raises(ValueError):
            BurnRateRule(long_s=1.0, short_s=0.5, factor=0.0)
        obs = Observability()
        obs.add_slo("a")
        with pytest.raises(ValueError):
            obs.add_slo("a")

    def test_burn_alert_fires_and_clears(self):
        obs, slo, clock = _obs_with_slo()
        # 100% failures: burn = 1.0 / 0.1 = 10 >> factor 2 in both windows.
        for _ in range(5):
            obs.record_request(False, 0.01)
        assert slo.alert_active
        assert slo.fired == 1
        (event,) = [
            e for e in obs.events.snapshot() if e.type == "slo.burn"
        ]
        assert event.fields["state"] == "firing"
        assert event.fields["slo"] == "avail"
        assert event.fields["rule"] == "10s/2s"
        assert event.fields["burn_long"] >= 2.0
        assert obs.active_alerts()[0]["name"] == "avail"
        assert obs.metrics.gauge("slo.alert_active", slo="avail") == 1.0
        assert (
            obs.metrics.gauge("slo.burn_rate", slo="avail", window="10s")
            >= 2.0
        )
        # Recovery: the bad bucket ages past the long window, healthy
        # traffic resumes, and the alert clears with a second event.
        clock.now = 15.0
        obs.record_request(True, 0.01)
        assert not slo.alert_active
        assert slo.cleared == 1
        states = [
            e.fields["state"]
            for e in obs.events.snapshot()
            if e.type == "slo.burn"
        ]
        assert states == ["firing", "cleared"]
        assert obs.active_alerts() == []
        assert obs.metrics.gauge("slo.alert_active", slo="avail") == 0.0

    def test_short_window_recovery_suppresses_alert(self):
        obs, slo, clock = _obs_with_slo()
        # An old failure burst inside the long window but outside the
        # short one: the two-window rule must NOT fire.
        obs.record_request(False, 0.01)
        clock.now = 5.0
        for _ in range(20):
            obs.record_request(True, 0.01)
        assert not slo.alert_active

    def test_latency_slo_counts_slow_requests_as_bad(self):
        obs, slo, clock = _obs_with_slo(kind="latency", threshold_s=0.05)
        for _ in range(5):
            obs.record_request(True, 0.5)  # ok but slow -> burns budget
        assert slo.alert_active
        status = slo.status()
        assert status["kind"] == "latency"
        assert status["threshold_s"] == 0.05

    def test_status_is_read_only(self):
        obs, slo, clock = _obs_with_slo()
        for _ in range(3):
            obs.record_request(False, 0.01)
        events_before = len(obs.events)
        fired_before = slo.fired
        status = slo.status()
        assert status["alert_active"] is True
        assert len(obs.events) == events_before
        assert slo.fired == fired_before

    def test_evaluate_slos_clears_between_requests(self):
        obs, slo, clock = _obs_with_slo()
        for _ in range(3):
            obs.record_request(False, 0.01)
        assert slo.alert_active
        # No further traffic: a clock-driven evaluation pass still clears.
        clock.now = 50.0
        obs.evaluate_slos()
        assert not slo.alert_active


# ---------------------------------------------------------------------------
# Tail-based trace sampling
# ---------------------------------------------------------------------------


class TestTailSampling:
    def test_rate_zero_drops_healthy_keeps_interesting(self):
        obs = Observability(trace_sample_rate=0.0)
        for _ in range(3):
            with obs.span("healthy"):
                pass
        with obs.span("flagged") as span:
            span.tag(sample_keep="slow")
        try:
            with obs.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        names = [root.name for root in obs.tracer.roots]
        assert names == ["flagged", "boom"]
        assert obs.tracer.sampled_out == 3
        assert obs.metrics.counter("obs.spans_sampled_out") == 3.0
        assert "tail sampling at rate 0" in obs.tracer.render()

    def test_child_error_keeps_root(self):
        obs = Observability(trace_sample_rate=0.0)
        with obs.span("root"):
            try:
                with obs.span("child"):
                    raise ValueError("nested")
            except ValueError:
                pass
        assert [root.name for root in obs.tracer.roots] == ["root"]

    def test_fractional_rate_is_deterministic(self):
        obs = Observability(trace_sample_rate=0.5)
        for _ in range(10):
            with obs.span("healthy"):
                pass
        assert len(obs.tracer.roots) == 5
        assert obs.tracer.sampled_out == 5

    def test_default_rate_keeps_everything(self):
        obs = Observability()
        for _ in range(4):
            with obs.span("healthy"):
                pass
        assert len(obs.tracer.roots) == 4
        assert obs.tracer.sampled_out == 0

    def test_clear_resets_sampling_state(self):
        obs = Observability(trace_sample_rate=0.5)
        with obs.span("healthy"):
            pass
        obs.tracer.clear()
        assert obs.tracer.sampled_out == 0
        assert obs.tracer._sample_debt == 0.0

    def test_system_keeps_slow_queries_at_rate_zero(self):
        system = build_two_site_join(
            20, 20, trace_sample_rate=0.0, slow_query_threshold_s=None
        )
        system.query("synth", JOIN_SQL)  # healthy -> sampled out
        assert system.tracer.sampled_out >= 1
        assert not system.tracer.find("query.execute")
        system.slow_query_threshold_s = 0.0  # now everything is "slow"
        system.query("synth", JOIN_SQL)
        (span,) = system.tracer.find("query.execute")
        assert span.tags["sample_keep"] == "slow"


# ---------------------------------------------------------------------------
# Request-id correlation
# ---------------------------------------------------------------------------


class TestRequestIds:
    def test_query_carries_one_id_across_all_telemetry(self):
        system = build_two_site_join(20, 20, slow_query_threshold_s=0.0)
        result = system.query("synth", JOIN_SQL)
        rid = result.request_id
        assert rid and rid.startswith("req-")

        # Root span tagged with the id.
        (span,) = system.tracer.find("query.execute")
        assert span.tags["request"] == rid
        # EXPLAIN ANALYZE header carries it.
        assert f"request={rid}" in result.explain_analyze().splitlines()[0]
        # The slow-query event carries it.
        (slow,) = system.events.of_type("query.slow")
        assert slow.fields["request"] == rid
        # Every wire message of the fetches carries it.
        stamped = [
            record
            for record in result.trace.records
            if record.request_id == rid
        ]
        assert stamped
        assert all(
            record.request_id in (None, rid)
            for record in result.trace.records
        )

    def test_ids_are_unique_per_query(self):
        system = build_two_site_join(10, 10)
        first = system.query("synth", JOIN_SQL)
        second = system.query("synth", JOIN_SQL)
        assert first.request_id != second.request_id

    def test_caller_supplied_id_wins(self):
        system = build_two_site_join(10, 10)
        result = system.query("synth", JOIN_SQL, request_id="req-custom")
        assert result.request_id == "req-custom"

    def test_server_sessions_mint_ids(self):
        system = build_two_site_join(10, 10)
        server = system.create_server()
        with server.connect() as session:
            first = session.query("synth", JOIN_SQL)
            second = session.query("synth", JOIN_SQL)
        assert first.request_id != second.request_id
        assert first.request_id.startswith("req-")

    def test_transactional_query_carries_id(self):
        system = build_bank_sites(2, 4)
        txn = system.begin_transaction()
        result = system.transactional_query(
            txn, "bank", "SELECT SUM(balance) FROM accounts"
        )
        txn.commit()
        assert result.request_id.startswith("req-")

    def test_chrome_trace_children_inherit_request(self):
        system = build_two_site_join(20, 20)
        result = system.query("synth", JOIN_SQL)
        rid = result.request_id
        trace = spans_to_chrome_trace(system.tracer, clock="wall")
        execute_tree = [
            event
            for event in trace["traceEvents"]
            if event["ph"] == "X"
            and event["name"].startswith(("query.", "fetch"))
        ]
        assert execute_tree
        assert all(
            event["args"].get("request") == rid for event in execute_tree
        )

    def test_minted_even_when_disabled(self):
        system = build_two_site_join(10, 10, observability=False)
        result = system.query("synth", JOIN_SQL)
        assert result.request_id.startswith("req-")

    def test_slow_threshold_is_a_system_knob(self):
        system = build_two_site_join(
            10, 10, slow_query_threshold_s=None
        )
        assert system.slow_query_threshold_s is None
        system.query("synth", JOIN_SQL)
        assert not system.events.of_type("query.slow")
        system.slow_query_threshold_s = 0.0
        assert system.obs.slow_query_threshold_s == 0.0
        system.query("synth", JOIN_SQL)
        assert system.events.of_type("query.slow")


# ---------------------------------------------------------------------------
# Exporters, ops console, bundles
# ---------------------------------------------------------------------------


class TestOpsConsoleAndBundles:
    def _loaded_system(self):
        system = build_two_site_join(20, 20, slow_query_threshold_s=0.0)
        system.add_slo("availability", objective=0.99)
        system.add_slo(
            "latency", objective=0.95, kind="latency", threshold_s=1.0
        )
        system.query("synth", JOIN_SQL)
        system.query("synth", JOIN_SQL)
        return system

    def test_window_and_slo_gauges_survive_prometheus_validation(self):
        system = self._loaded_system()
        system.obs.publish_window_gauges()
        text = metrics_to_prometheus(system.metrics)
        assert validate_prometheus_text(text) == []
        assert 'window_qps{federation="synth"}' in text
        assert 'window_latency_p95_s{federation="synth"}' in text
        assert 'slo_burn_rate{slo="availability",window="60s"}' in text
        assert 'slo_alert_active{slo="availability"}' in text

    def test_federation_stats_gains_ops_sections(self):
        system = self._loaded_system()
        stats = federation_stats(system)
        windows = stats["windows"]
        assert windows["federations"]["synth"]["requests"] == 2
        assert windows["federations"]["synth"]["error_rate"] == 0.0
        assert set(windows["sites"]) == {"s1", "s2"}
        assert [slo["name"] for slo in stats["slos"]] == [
            "availability",
            "latency",
        ]
        assert stats["alerts"] == []
        assert stats["caches"]["plancache"]["misses"] >= 1.0
        mvcc = stats["sites"]["s1"]["mvcc"]
        assert mvcc["active_snapshots"] == 0
        assert mvcc["snapshot_horizon_age"] >= 0

    def test_dashboard_renders_ops_window(self):
        system = self._loaded_system()
        dashboard = render_dashboard(introspection_snapshot(system))
        assert "== ops window" in dashboard
        assert "federation synth: qps=" in dashboard
        assert "breaker=CLOSED" in dashboard
        assert "cache plancache:" in dashboard
        assert "mvcc s1:" in dashboard
        assert "slo availability [availability 99%]: ok" in dashboard

    def test_dashboard_tolerates_pre_ops_snapshots(self):
        # Bundles written before PR 8 have no windows/slos/caches keys.
        old = {"federation_stats": {"sites": {}, "network": {}}}
        dashboard = render_dashboard(old)
        assert "== ops window" not in dashboard
        assert "== federation ==" in dashboard

    def test_bundle_round_trips_request_correlation(self, tmp_path):
        system = self._loaded_system()
        result = system.query("synth", JOIN_SQL)
        rid = result.request_id
        path = system.dump_debug_bundle(tmp_path / "bundle")
        bundle = load_debug_bundle(path)
        assert bundle.validate() == []
        # The same id joins the reloaded spans and events.
        stamped_spans = [
            event
            for event in bundle.trace("wall")["traceEvents"]
            if event.get("args", {}).get("request") == rid
        ]
        assert stamped_spans
        slow_events = [
            e for e in bundle.events if e.fields.get("request") == rid
        ]
        assert slow_events
        # Bytes round-trip: reloaded events equal the live log.
        assert [e.to_json() for e in bundle.events] == [
            e.to_json() for e in system.events.snapshot()
        ]
        assert bundle.manifest["spans_sampled_out"] == 0
        assert bundle.config["trace_sample_rate"] == 1.0
        assert bundle.config["slos"] == ["availability", "latency"]

    def test_sampled_out_traces_never_reach_bundles(self, tmp_path):
        system = build_two_site_join(
            10, 10, trace_sample_rate=0.0, slow_query_threshold_s=None
        )
        result = system.query("synth", JOIN_SQL)
        rid = result.request_id
        bundle = load_debug_bundle(
            system.dump_debug_bundle(tmp_path / "bundle")
        )
        for clock in ("wall", "sim"):
            assert not [
                event
                for event in bundle.trace(clock)["traceEvents"]
                if event.get("args", {}).get("request") == rid
            ]
        assert bundle.manifest["spans_sampled_out"] >= 1

    def test_alert_fires_in_system_snapshot(self):
        clock = ManualClock()
        system = build_two_site_join(10, 10)
        system.obs.bind_clock(clock)  # decouple from the network clock
        system.add_slo(
            "availability",
            objective=0.99,
            rules=(BurnRateRule(10.0, 2.0, 2.0),),
        )
        for _ in range(5):
            system.obs.record_request(False, 0.01, federation="synth")
        stats = federation_stats(system)
        assert [alert["name"] for alert in stats["alerts"]] == [
            "availability"
        ]
        dashboard = render_dashboard(introspection_snapshot(system))
        assert "ALERT availability:" in dashboard
        assert "FIRING" in dashboard

    def test_snapshot_remains_json_serialisable(self):
        system = self._loaded_system()
        snapshot = introspection_snapshot(system)
        text = json.dumps(snapshot, sort_keys=True)
        assert json.loads(text) == json.loads(text)
