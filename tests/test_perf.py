"""Performance-layer tests: parallel fetch determinism, thread-safety,
and sorted index postings.

The contract under test: threaded fetch execution changes *wall-clock*
behaviour only.  Simulated cost, bytes, rows, and message counts must be
bit-identical to sequential execution, and shared structures (metrics,
span trees, network counters) must stay exact under concurrent queries.
"""

import threading

import pytest

from repro.storage.index import HashIndex, OrderedIndex
from repro.workloads import build_partitioned_sites, build_two_site_join

QUERIES = [
    "SELECT k, grp, val FROM measurements WHERE grp < 4",
    "SELECT grp, COUNT(*), SUM(val) FROM measurements GROUP BY grp "
    "ORDER BY grp",
    "SELECT site, MAX(val) FROM measurements GROUP BY site ORDER BY site",
    "SELECT COUNT(*) FROM measurements",
]


def _build(parallel_fetches):
    return build_partitioned_sites(
        4,
        30,
        seed=11,
        parallel_fetches=parallel_fetches,
        fragment_cache=False,
    )


class TestParallelDeterminism:
    """Parallel execution is an optimisation, not a semantics change."""

    @pytest.mark.parametrize("sql", QUERIES)
    def test_bit_identical_to_sequential(self, sql):
        with _build(1) as sequential, _build(4) as parallel:
            seq = sequential.query("synth", sql)
            par = parallel.query("synth", sql)
            assert par.rows == seq.rows  # same order, not just same set
            assert par.columns == seq.columns
            assert par.elapsed_s == seq.elapsed_s  # exact, no tolerance
            assert par.bytes_shipped == seq.bytes_shipped
            assert par.fetched_rows == seq.fetched_rows
            assert par.trace.message_count == seq.trace.message_count

    def test_semijoin_stages_identical(self):
        sql = (
            "SELECT l.k, r.val FROM lhs l, rhs r "
            "WHERE l.k = r.k AND l.flt < 0.3"
        )
        seq_sys = build_two_site_join(
            60, 120, parallel_fetches=1, fragment_cache=False
        )
        par_sys = build_two_site_join(
            60, 120, parallel_fetches=4, fragment_cache=False
        )
        with seq_sys, par_sys:
            seq = seq_sys.query("synth", sql)
            par = par_sys.query("synth", sql)
            assert par.rows == seq.rows
            assert par.elapsed_s == seq.elapsed_s
            assert par.bytes_shipped == seq.bytes_shipped

    def test_network_totals_identical(self):
        with _build(1) as sequential, _build(4) as parallel:
            for sql in QUERIES:
                sequential.query("synth", sql)
                parallel.query("synth", sql)
            assert (
                parallel.network.total_messages
                == sequential.network.total_messages
            )
            assert (
                parallel.network.total_bytes
                == sequential.network.total_bytes
            )
            assert parallel.network.now_s == sequential.network.now_s

    def test_trace_balanced_after_parallel_run(self):
        with _build(4) as system:
            result = system.query("synth", QUERIES[0])
            assert result.trace.balanced


def _walk(span, seen):
    assert id(span) not in seen, "span appears twice in one tree"
    seen.add(id(span))
    for child in span.children:
        assert child.parent is span, "child points at the wrong parent"
        _walk(child, seen)


class TestConcurrentQueries:
    """N threads × M queries against ONE system: exact shared accounting."""

    THREADS = 6
    PER_THREAD = 8

    def test_counters_and_spans_survive_storm(self):
        with build_partitioned_sites(4, 20, seed=3) as system:
            expected = {
                sql: system.query("synth", sql).rows for sql in QUERIES
            }
            system.metrics.reset()
            errors = []

            def storm(thread_index):
                try:
                    for i in range(self.PER_THREAD):
                        sql = QUERIES[(thread_index + i) % len(QUERIES)]
                        result = system.query("synth", sql)
                        assert result.rows == expected[sql]
                        assert result.trace.balanced
                except BaseException as exc:  # noqa: BLE001 - reported below
                    errors.append(exc)

            threads = [
                threading.Thread(target=storm, args=(t,))
                for t in range(self.THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors

            total = self.THREADS * self.PER_THREAD
            metrics = system.metrics
            assert metrics.counter_total("query.executed") == total
            # Every query over `measurements` fans out to exactly 4 fetches;
            # each one either hits or misses the fragment cache — nothing
            # lost, nothing double-counted.
            assert (
                metrics.counter_total("fragcache.hit")
                + metrics.counter_total("fragcache.miss")
                == total * 4
            )
            assert (
                metrics.counter_total("plancache.hit")
                + metrics.counter_total("plancache.miss")
                == total
            )

            # No span tree corrupted: parent/child links are consistent and
            # worker-thread fetch spans landed under a stage of their tree.
            for root in list(system.tracer.roots):
                _walk(root, set())
                if root.name != "query.execute":
                    continue
                stages = root.find("execute.stage")
                for fetch_span in root.find("execute.fetch"):
                    assert fetch_span.parent in stages


class TestSortedPostings:
    """Index postings stay sorted at insert; scans never re-sort."""

    def test_sorted_rids_ascending(self):
        index = HashIndex("i", "t", ["k"])
        for rid in (42, 7, 19, 3, 26):
            index.insert((1,), rid)
        assert index.sorted_rids((1,)) == (3, 7, 19, 26, 42)
        assert index.sorted_rids((9,)) == ()
        assert index.lookup((1,)) == {3, 7, 19, 26, 42}

    def test_duplicate_insert_ignored(self):
        index = HashIndex("i", "t", ["k"])
        index.insert((1,), 5)
        index.insert((1,), 5)
        assert index.sorted_rids((1,)) == (5,)
        assert len(index) == 1

    def test_delete_keeps_order(self):
        index = HashIndex("i", "t", ["k"])
        for rid in (8, 2, 6, 4):
            index.insert((1,), rid)
        index.delete((1,), 6)
        index.delete((1,), 99)  # absent: no-op
        assert index.sorted_rids((1,)) == (2, 4, 8)

    def test_range_scan_sorted(self):
        index = OrderedIndex("i", "t", ["k"])
        for key in (3, 1, 2):
            for rid in (30 + key, 10 + key, 20 + key):
                index.insert((key,), rid)
        got = list(index.range_scan_sorted((1,), (2,)))
        assert got == [
            ((1,), (11, 21, 31)),
            ((2,), (12, 22, 32)),
        ]
        # set-returning API unchanged
        assert dict(index.range_scan((1,), (1,))) == {(1,): {11, 21, 31}}
