"""Component DBMS tests: sessions, dialect quirks, autonomy boundary."""

import pytest

from repro.errors import LockTimeoutError, TransactionError
from repro.localdb import LocalDBMS, OracleDBMS, PostgresDBMS


@pytest.fixture
def oracle():
    dbms = OracleDBMS("ora", lock_timeout=1.0)
    dbms.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, s VARCHAR2(20), n NUMBER)"
    )
    return dbms


@pytest.fixture
def postgres():
    dbms = PostgresDBMS("pg", lock_timeout=1.0)
    dbms.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, s VARCHAR(20), n FLOAT)"
    )
    return dbms


class TestSessions:
    def test_autocommit(self, postgres):
        postgres.execute("INSERT INTO t VALUES (1, 'a', 1.0)")
        assert postgres.execute("SELECT COUNT(*) FROM t").scalar() == 1

    def test_explicit_txn_commit(self, postgres):
        session = postgres.connect()
        session.begin()
        session.execute("INSERT INTO t VALUES (1, 'a', 1.0)")
        session.execute("INSERT INTO t VALUES (2, 'b', 2.0)")
        session.commit()
        assert postgres.execute("SELECT COUNT(*) FROM t").scalar() == 2

    def test_explicit_txn_rollback(self, postgres):
        session = postgres.connect()
        session.begin()
        session.execute("INSERT INTO t VALUES (1, 'a', 1.0)")
        session.rollback()
        assert postgres.execute("SELECT COUNT(*) FROM t").scalar() == 0

    def test_sql_level_txn_control(self, postgres):
        session = postgres.connect()
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (1, 'a', 1.0)")
        session.execute("ROLLBACK")
        assert postgres.execute("SELECT COUNT(*) FROM t").scalar() == 0
        assert not session.in_transaction

    def test_double_begin_rejected(self, postgres):
        session = postgres.connect()
        session.begin()
        with pytest.raises(TransactionError):
            session.begin()

    def test_failed_autocommit_statement_rolls_back(self, postgres):
        postgres.execute("INSERT INTO t VALUES (1, 'a', 1.0)")
        with pytest.raises(Exception):
            postgres.execute("INSERT INTO t VALUES (1, 'dup', 1.0)")
        assert postgres.execute("SELECT COUNT(*) FROM t").scalar() == 1

    def test_script_execution(self, postgres):
        postgres.execute_script(
            "INSERT INTO t VALUES (1, 'a', 1.0); INSERT INTO t VALUES (2, 'b', 2.0);"
        )
        assert postgres.execute("SELECT COUNT(*) FROM t").scalar() == 2

    def test_query_helper_rejects_dml(self, postgres):
        session = postgres.connect()
        with pytest.raises(TransactionError):
            session.query("INSERT INTO t VALUES (1, 'a', 1.0)")

    def test_table_introspection(self, postgres):
        assert postgres.table_names() == ["t"]
        assert postgres.table_schema("t").column_names == ["id", "s", "n"]


class TestOracleDialect:
    def test_empty_string_is_null(self, oracle):
        oracle.execute("INSERT INTO t VALUES (1, '', 0)")
        assert oracle.execute("SELECT COUNT(*) FROM t WHERE s IS NULL").scalar() == 1
        assert oracle.execute("SELECT COUNT(*) FROM t WHERE s = ''").scalar() == 0

    def test_empty_string_comparison_is_null_comparison(self, oracle):
        oracle.execute("INSERT INTO t VALUES (1, 'x', 0)")
        # '' becomes NULL, and x = NULL is unknown → no rows
        assert oracle.execute("SELECT COUNT(*) FROM t WHERE s <> ''").scalar() == 0

    def test_rownum_limit(self, oracle):
        for i in range(5):
            oracle.execute(f"INSERT INTO t VALUES ({i}, 'r{i}', {i})")
        result = oracle.execute("SELECT id FROM t WHERE ROWNUM <= 3")
        assert len(result) == 3

    def test_rownum_strict_less(self, oracle):
        for i in range(5):
            oracle.execute(f"INSERT INTO t VALUES ({i}, 'r{i}', {i})")
        assert len(oracle.execute("SELECT id FROM t WHERE ROWNUM < 3")) == 2

    def test_rownum_combines_with_predicates(self, oracle):
        for i in range(10):
            oracle.execute(f"INSERT INTO t VALUES ({i}, 'r{i}', {i})")
        result = oracle.execute(
            "SELECT id FROM t WHERE n >= 4 AND ROWNUM <= 2"
        )
        assert len(result) == 2
        assert all(row[0] >= 4 for row in result.rows)

    def test_number_type_stores_decimals(self, oracle):
        oracle.execute("INSERT INTO t VALUES (1, 'a', 2.5)")
        value = oracle.execute("SELECT n FROM t").scalar()
        assert float(value) == 2.5

    def test_dialect_name(self, oracle):
        assert oracle.dialect.name == "oracle"


class TestPostgresDialect:
    def test_empty_string_distinct_from_null(self, postgres):
        postgres.execute("INSERT INTO t VALUES (1, '', 0)")
        assert (
            postgres.execute("SELECT COUNT(*) FROM t WHERE s = ''").scalar() == 1
        )
        assert (
            postgres.execute("SELECT COUNT(*) FROM t WHERE s IS NULL").scalar()
            == 0
        )

    def test_limit_native(self, postgres):
        for i in range(5):
            postgres.execute(f"INSERT INTO t VALUES ({i}, 'r{i}', {i})")
        assert len(postgres.execute("SELECT id FROM t LIMIT 2")) == 2

    def test_boolean_support(self, postgres):
        postgres.execute("CREATE TABLE flags (id INTEGER, active BOOLEAN)")
        postgres.execute("INSERT INTO flags VALUES (1, TRUE), (2, FALSE)")
        assert (
            postgres.execute(
                "SELECT COUNT(*) FROM flags WHERE active = TRUE"
            ).scalar()
            == 1
        )


class TestLockingAcrossSessions:
    def test_writer_blocks_writer(self, postgres):
        postgres.execute("INSERT INTO t VALUES (1, 'a', 1.0)")
        s1 = postgres.connect()
        s2 = postgres.connect()
        s2.lock_timeout = 0.05
        s1.begin()
        s1.execute("UPDATE t SET n = 2 WHERE id = 1")
        s2.begin()
        with pytest.raises(LockTimeoutError):
            s2.execute("UPDATE t SET n = 3 WHERE id = 1")
        s1.commit()

    def test_readers_share(self, postgres):
        postgres.execute("INSERT INTO t VALUES (1, 'a', 1.0)")
        s1 = postgres.connect()
        s2 = postgres.connect()
        s1.begin()
        s2.begin()
        s1.execute("SELECT * FROM t")
        s2.execute("SELECT * FROM t")  # no conflict
        s1.commit()
        s2.commit()

    def test_lock_timeout_aborts_whole_txn(self, postgres):
        postgres.execute("CREATE TABLE side (id INTEGER)")
        postgres.execute("INSERT INTO t VALUES (1, 'a', 1.0)")
        s1 = postgres.connect()
        s2 = postgres.connect()
        s2.lock_timeout = 0.05
        s1.begin()
        s1.execute("UPDATE t SET n = 2 WHERE id = 1")
        s2.begin()
        s2.execute("INSERT INTO side VALUES (9)")
        with pytest.raises(LockTimeoutError):
            s2.execute("UPDATE t SET n = 3 WHERE id = 1")
        # s2's whole transaction rolled back, including its insert
        assert not s2.in_transaction
        s1.commit()
        assert postgres.execute("SELECT COUNT(*) FROM side").scalar() == 0

    def test_serializable_transfer(self, postgres):
        """Two sequential transfers preserve the sum (strict 2PL sanity)."""
        postgres.execute("INSERT INTO t VALUES (1, 'a', 100.0), (2, 'b', 100.0)")
        for source, target in ((1, 2), (2, 1)):
            session = postgres.connect()
            session.begin()
            session.execute(f"UPDATE t SET n = n - 10 WHERE id = {source}")
            session.execute(f"UPDATE t SET n = n + 10 WHERE id = {target}")
            session.commit()
        assert postgres.execute("SELECT SUM(n) FROM t").scalar() == 200.0

    def test_dbms_names_unique_by_default(self):
        first = LocalDBMS()
        second = LocalDBMS()
        assert first.name != second.name
