"""MVCC snapshot reads in the component DBMSs (PR 6 tentpole).

Read-only statements run against a commit-timestamp snapshot and take no
table locks; writers keep strict 2PL + undo.  These tests pin down the
visibility rules, the repeatable-read guarantee of ``BEGIN READ ONLY``,
version-chain garbage collection, index scans under a snapshot, and the
three satellite bugfixes (txn-id collisions, counter races, script leaks).
"""

import threading

import pytest

from repro.concurrency.wal import LogRecordType
from repro.errors import LockTimeoutError, ParseError, TransactionError
from repro.localdb import PostgresDBMS
from repro.sql import ast, parse_statement
from repro.sql.printer import to_sql


@pytest.fixture
def dbms():
    db = PostgresDBMS("s", lock_timeout=0.05)
    db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER)")
    for k in range(10):
        db.execute(f"INSERT INTO t VALUES ({k}, {k * 10})")
    return db


class TestSnapshotVisibility:
    def test_autocommit_read_ignores_uncommitted_writer(self, dbms):
        writer = dbms.connect()
        writer.begin()
        writer.execute("UPDATE t SET v = 999 WHERE k = 1")
        # Reader neither blocks nor sees the dirty value.
        assert dbms.execute("SELECT v FROM t WHERE k = 1").scalar() == 10
        writer.commit()
        assert dbms.execute("SELECT v FROM t WHERE k = 1").scalar() == 999

    def test_autocommit_read_never_blocks(self, dbms):
        writer = dbms.connect()
        writer.begin()
        writer.execute("UPDATE t SET v = 1")  # X lock on the whole table
        reader = dbms.connect()
        reader.lock_timeout = 0.01  # would fire instantly if a lock were taken
        assert len(reader.execute("SELECT * FROM t").rows) == 10
        writer.rollback()

    def test_uncommitted_insert_invisible(self, dbms):
        writer = dbms.connect()
        writer.begin()
        writer.execute("INSERT INTO t VALUES (100, 1)")
        assert dbms.execute("SELECT COUNT(*) FROM t").scalar() == 10
        writer.commit()
        assert dbms.execute("SELECT COUNT(*) FROM t").scalar() == 11

    def test_uncommitted_delete_invisible(self, dbms):
        writer = dbms.connect()
        writer.begin()
        writer.execute("DELETE FROM t WHERE k = 3")
        assert dbms.execute("SELECT COUNT(*) FROM t").scalar() == 10
        assert dbms.execute("SELECT v FROM t WHERE k = 3").scalar() == 30
        writer.commit()
        assert dbms.execute("SELECT COUNT(*) FROM t").scalar() == 9

    def test_abort_restores_visibility(self, dbms):
        writer = dbms.connect()
        writer.begin()
        writer.execute("UPDATE t SET v = -1 WHERE k = 2")
        writer.execute("DELETE FROM t WHERE k = 4")
        writer.rollback()
        assert dbms.execute("SELECT v FROM t WHERE k = 2").scalar() == 20
        assert dbms.execute("SELECT COUNT(*) FROM t").scalar() == 10
        # No pending markers or chains left behind.
        table = dbms.catalog.get_table("t")
        assert table.uncommitted == {}

    def test_mvcc_reads_off_restores_2pl_blocking(self):
        db = PostgresDBMS("base", lock_timeout=0.05, mvcc_reads=False)
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("INSERT INTO t VALUES (1)")
        writer = db.connect()
        writer.begin()
        writer.execute("UPDATE t SET a = 2")
        with pytest.raises(LockTimeoutError):
            db.execute("SELECT * FROM t")
        writer.rollback()


class TestReadOnlyTransactions:
    def test_repeatable_snapshot_across_commits(self, dbms):
        reader = dbms.connect()
        reader.begin(read_only=True)
        assert reader.execute("SELECT v FROM t WHERE k = 5").scalar() == 50
        dbms.execute("UPDATE t SET v = 0 WHERE k = 5")
        # Same snapshot: the committed update stays invisible.
        assert reader.execute("SELECT v FROM t WHERE k = 5").scalar() == 50
        assert reader.execute("SELECT SUM(v) FROM t").scalar() == 450
        reader.commit()
        assert dbms.execute("SELECT v FROM t WHERE k = 5").scalar() == 0

    def test_read_only_rejects_dml(self, dbms):
        reader = dbms.connect()
        reader.begin(read_only=True)
        with pytest.raises(TransactionError):
            reader.execute("UPDATE t SET v = 1 WHERE k = 1")
        with pytest.raises(TransactionError):
            reader.execute("INSERT INTO t VALUES (200, 1)")
        reader.rollback()

    def test_read_only_via_sql(self, dbms):
        session = dbms.connect()
        session.execute("BEGIN READ ONLY")
        assert session.read_only
        assert session.in_transaction
        dbms.execute("DELETE FROM t WHERE k = 9")
        assert session.execute("SELECT COUNT(*) FROM t").scalar() == 10
        session.execute("COMMIT")
        assert not session.in_transaction
        assert session.execute("SELECT COUNT(*) FROM t").scalar() == 9

    def test_read_only_takes_no_locks(self, dbms):
        reader = dbms.connect()
        reader.begin(read_only=True)
        reader.execute("SELECT * FROM t")
        # A writer gets its X lock immediately.
        writer = dbms.connect()
        writer.lock_timeout = 0.01
        writer.begin()
        writer.execute("UPDATE t SET v = 1 WHERE k = 0")
        writer.commit()
        reader.commit()

    def test_read_only_cannot_be_global_branch(self, dbms):
        session = dbms.connect()
        with pytest.raises(TransactionError):
            session.begin(global_id="G1", read_only=True)

    def test_double_begin_rejected(self, dbms):
        session = dbms.connect()
        session.begin(read_only=True)
        with pytest.raises(TransactionError):
            session.begin()
        session.rollback()


class TestBeginReadOnlySQL:
    def test_parse(self):
        stmt = parse_statement("BEGIN READ ONLY")
        assert isinstance(stmt, ast.BeginTransaction)
        assert stmt.read_only is True
        assert parse_statement("BEGIN").read_only is False
        assert parse_statement("BEGIN TRANSACTION READ ONLY").read_only is True

    def test_print_round_trip(self):
        assert to_sql(parse_statement("BEGIN READ ONLY")) == "BEGIN READ ONLY"
        assert to_sql(parse_statement("BEGIN")) == "BEGIN"

    def test_read_without_only_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("BEGIN READ")

    def test_read_stays_usable_as_identifier(self):
        stmt = parse_statement("SELECT read, only FROM pages")
        names = [str(item.expression) for item in stmt.items]
        assert names == ["read", "only"]


class TestVersionGC:
    def test_chains_pruned_without_readers(self, dbms):
        table = dbms.catalog.get_table("t")
        for round_ in range(5):
            dbms.execute(f"UPDATE t SET v = {round_} WHERE k = 7")
        dbms.transactions.vacuum()
        # No active snapshot: nothing needs history.
        assert table.versions == {}
        assert table.uncommitted == {}

    def test_open_snapshot_pins_versions(self, dbms):
        table = dbms.catalog.get_table("t")
        reader = dbms.connect()
        reader.begin(read_only=True)
        dbms.execute("UPDATE t SET v = 1 WHERE k = 7")
        dbms.execute("UPDATE t SET v = 2 WHERE k = 7")
        dbms.transactions.vacuum()
        assert 7 in {rid for rid in table.versions} or table.versions
        # The pinned snapshot still resolves the original value.
        assert reader.execute("SELECT v FROM t WHERE k = 7").scalar() == 70
        reader.commit()
        dbms.transactions.vacuum()
        assert table.versions == {}

    def test_chain_collapses_as_horizon_advances(self, dbms):
        table = dbms.catalog.get_table("t")
        old_reader = dbms.connect()
        old_reader.begin(read_only=True)
        for round_ in range(20):
            dbms.execute(f"UPDATE t SET v = {round_} WHERE k = 7")
        # The old snapshot pins history: the chain holds every version
        # newer than its timestamp.
        (chain,) = table.versions.values()
        assert len(chain) == 21
        new_reader = dbms.connect()
        new_reader.begin(read_only=True)
        old_reader.commit()
        # Next commit prunes against the advanced horizon: one entry at or
        # below it (what new_reader sees) plus the new version.
        dbms.execute("UPDATE t SET v = 99 WHERE k = 7")
        (chain,) = table.versions.values()
        assert len(chain) == 2
        assert new_reader.execute("SELECT v FROM t WHERE k = 7").scalar() == 19
        new_reader.commit()

    def test_periodic_vacuum_runs(self, dbms):
        dbms.transactions.vacuum_interval = 4
        table = dbms.catalog.get_table("t")
        dbms.execute("UPDATE t SET v = 1 WHERE k = 3")
        # Autocommit snapshot reads count as releases; the 4th triggers
        # a vacuum that clears the unpinned chain.
        for _ in range(4):
            dbms.execute("SELECT v FROM t WHERE k = 3")
        assert table.versions == {}

    def test_snapshot_release_idempotent(self, dbms):
        snapshot = dbms.transactions.begin_snapshot()
        assert dbms.transactions.active_snapshots() == 1
        snapshot.release()
        snapshot.release()
        assert dbms.transactions.active_snapshots() == 0


class TestIndexScanUnderSnapshot:
    def test_point_lookup_sees_pre_image(self, dbms):
        writer = dbms.connect()
        writer.begin()
        writer.execute("UPDATE t SET v = 999 WHERE k = 6")
        # Constant PK equality → IndexScan; the uncommitted rid must be
        # re-resolved through the snapshot.
        assert dbms.execute("SELECT v FROM t WHERE k = 6").scalar() == 60
        writer.rollback()

    def test_range_scan_with_pending_changes(self, dbms):
        writer = dbms.connect()
        writer.begin()
        writer.execute("DELETE FROM t WHERE k = 4")
        writer.execute("INSERT INTO t VALUES (15, 150)")
        rows = dbms.execute(
            "SELECT k FROM t WHERE k >= 3 AND k <= 20 ORDER BY k"
        ).rows
        assert [r[0] for r in rows] == [3, 4, 5, 6, 7, 8, 9]
        writer.commit()
        rows = dbms.execute(
            "SELECT k FROM t WHERE k >= 3 AND k <= 20 ORDER BY k"
        ).rows
        assert [r[0] for r in rows] == [3, 5, 6, 7, 8, 9, 15]

    def test_index_lookup_of_committed_but_post_snapshot_row(self, dbms):
        reader = dbms.connect()
        reader.begin(read_only=True)
        dbms.execute("INSERT INTO t VALUES (50, 500)")
        dbms.execute("UPDATE t SET v = -8 WHERE k = 8")
        # New row not in the snapshot; updated row resolves to pre-image.
        assert reader.execute("SELECT v FROM t WHERE k = 50").rows == []
        assert reader.execute("SELECT v FROM t WHERE k = 8").scalar() == 80
        reader.commit()
        assert dbms.execute("SELECT v FROM t WHERE k = 50").scalar() == 500


class TestTxnIdRegression:
    """Satellite 1: successive transactions on one session must not share
    a WAL identity (the old id was the constant ``<session>-t``)."""

    def test_two_transactions_get_distinct_ids(self, dbms):
        session = dbms.connect()
        session.begin()
        session.execute("UPDATE t SET v = 1 WHERE k = 0")
        session.commit()
        session.begin()
        session.execute("UPDATE t SET v = 2 WHERE k = 0")
        session.commit()
        ids = {
            r.txn_id
            for r in dbms.transactions.wal.records
            if r.record_type is LogRecordType.BEGIN
            and str(r.txn_id).startswith(session.session_id)
        }
        assert len(ids) == 2

    def test_wal_replay_of_two_txn_session(self, dbms):
        """Replaying the WAL must see BEGIN/COMMIT pair up per txn id —
        with the colliding ids the second BEGIN re-used a committed id."""
        session = dbms.connect()
        for _ in range(2):
            session.begin()
            session.execute("UPDATE t SET v = v + 1 WHERE k = 1")
            session.commit()
        states: dict[object, str] = {}
        for record in dbms.transactions.wal.records:
            if record.record_type is LogRecordType.BEGIN:
                assert states.get(record.txn_id) != "open", (
                    f"BEGIN for already-open txn {record.txn_id}"
                )
                states[record.txn_id] = "open"
            elif record.record_type in (
                LogRecordType.COMMIT,
                LogRecordType.ABORT,
            ):
                assert states.get(record.txn_id) == "open"
                states[record.txn_id] = "done"
        assert all(state == "done" for state in states.values())


class TestScriptLeakRegression:
    """Satellite 3: execute_script must not leak an open transaction."""

    def test_failing_script_releases_locks(self, dbms):
        with pytest.raises(Exception):
            dbms.execute_script(
                """
                BEGIN;
                UPDATE t SET v = 1 WHERE k = 0;
                INSERT INTO t VALUES (0, 0);
                """
            )
        # The X lock from the UPDATE must be gone: a new writer succeeds.
        writer = dbms.connect()
        writer.lock_timeout = 0.05
        writer.begin()
        writer.execute("UPDATE t SET v = 5 WHERE k = 0")
        writer.commit()
        # And the failed script's partial work was rolled back.
        assert dbms.execute("SELECT v FROM t WHERE k = 0").scalar() == 5
        assert dbms.transactions.active_transactions() == []

    def test_unclosed_begin_rolled_back(self, dbms):
        dbms.execute_script(
            """
            BEGIN;
            UPDATE t SET v = 77 WHERE k = 2;
            """
        )
        assert dbms.transactions.active_transactions() == []
        assert dbms.execute("SELECT v FROM t WHERE k = 2").scalar() == 20


class TestCounterThreadSafety:
    """Satellite 2: commits/aborts counters move under the manager mutex."""

    def test_exact_totals_under_contention(self):
        db = PostgresDBMS("c", lock_timeout=5.0)
        db.execute("CREATE TABLE u (a INTEGER)")
        base_commits = db.transactions.commits
        base_aborts = db.transactions.aborts
        rounds = 25
        workers = 8

        def work():
            session = db.connect()
            for i in range(rounds):
                session.begin()
                session.execute("INSERT INTO u VALUES (1)")
                if i % 2:
                    session.commit()
                else:
                    session.rollback()

        threads = [threading.Thread(target=work) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        expected_each = rounds // 2
        assert db.transactions.commits - base_commits == (
            workers * expected_each
        )
        assert db.transactions.aborts - base_aborts == workers * (
            rounds - expected_each
        )


class TestLocalCommitInvalidatesFragmentCache:
    def test_table_commit_ts_moves_on_local_commit(self, dbms):
        before = dbms.transactions.table_commit_ts("t")
        dbms.execute("UPDATE t SET v = 5 WHERE k = 5")
        assert dbms.transactions.table_commit_ts("t") > before
        # Read-only traffic does not move it.
        mid = dbms.transactions.table_commit_ts("t")
        dbms.execute("SELECT * FROM t")
        assert dbms.transactions.table_commit_ts("t") == mid
