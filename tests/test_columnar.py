"""Columnar engine + wire codec tests (experiment E20).

Three layers:

1. **Engine differential** — randomized queries over randomized tables run
   on both the row-at-a-time and the vectorized engine must produce
   identical row multisets *and* identical ``rows_scanned`` accounting.
2. **Codec properties** — dict/RLE encoding round-trips exactly (NULLs,
   empty fragments, mixed ``True``/``1``/``1.0`` columns) and never
   charges more than the raw rowset.
3. **System knobs** — ``vectorized=True`` leaves simulated accounting
   bit-identical; ``wire_compression=True`` leaves results identical
   while cutting bytes-on-wire; both compose with the fragment cache.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import LocalEngine
from repro.net.codec import decode_fragment, encode_fragment
from repro.net.sim import estimate_rows_bytes
from repro.storage import Catalog
from repro.workloads import build_bank_sites


# ---------------------------------------------------------------------------
# Engine differential
# ---------------------------------------------------------------------------


def _build_random_engine(seed: int) -> LocalEngine:
    rng = random.Random(seed)
    catalog = Catalog(f"diff{seed}")
    engine = LocalEngine(catalog)
    engine.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, grp INTEGER, val FLOAT, "
        "tag VARCHAR(8))"
    )
    engine.execute(
        "CREATE TABLE d (grp INTEGER PRIMARY KEY, label VARCHAR(8))"
    )
    tags = ["aa", "bb", "cc", None]
    for i in range(rng.randrange(50, 300)):
        engine.execute(
            "INSERT INTO t VALUES (?, ?, ?, ?)",
            [
                i,
                rng.randrange(12) if rng.random() > 0.1 else None,
                round(rng.uniform(-50, 50), 3) if rng.random() > 0.1 else None,
                rng.choice(tags),
            ],
        )
    for g in range(12):
        if rng.random() > 0.2:
            engine.execute(
                "INSERT INTO d VALUES (?, ?)", [g, rng.choice(tags[:3])]
            )
    return engine


QUERIES = [
    "SELECT * FROM t",
    "SELECT id, val * 2 FROM t WHERE grp > 3 AND val < 20",
    "SELECT tag, COUNT(*), SUM(val), AVG(val), MIN(id), MAX(id) "
    "FROM t GROUP BY tag",
    "SELECT grp, COUNT(DISTINCT tag) FROM t GROUP BY grp HAVING COUNT(*) > 2",
    "SELECT t.id, d.label FROM t JOIN d ON t.grp = d.grp WHERE t.val > 0",
    "SELECT t.id, d.label FROM t LEFT JOIN d ON t.grp = d.grp",
    "SELECT d.grp, COUNT(t.id) FROM d LEFT JOIN t ON t.grp = d.grp "
    "GROUP BY d.grp",
    "SELECT CASE WHEN val > 0 THEN 'pos' ELSE 'neg' END, COUNT(*) "
    "FROM t GROUP BY CASE WHEN val > 0 THEN 'pos' ELSE 'neg' END",
    "SELECT DISTINCT grp FROM t WHERE tag IN ('aa', 'bb')",
    "SELECT id FROM t WHERE tag LIKE 'a%' OR val BETWEEN -5 AND 5",
    "SELECT grp, val FROM t ORDER BY val DESC, id LIMIT 7",
    "SELECT UPPER(tag), ABS(val) FROM t WHERE tag IS NOT NULL",
]


@pytest.mark.parametrize("seed", range(5))
def test_differential_row_vs_vectorized(seed):
    engine = _build_random_engine(seed)
    for sql in QUERIES:
        engine.vectorized = False
        row_result = engine.execute(sql)
        row_scanned = engine.last_report.rows_scanned
        engine.vectorized = True
        vec_result = engine.execute(sql)
        vec_scanned = engine.last_report.rows_scanned
        engine.vectorized = False
        assert sorted(
            row_result.rows, key=repr
        ) == sorted(vec_result.rows, key=repr), sql
        assert row_result.columns == vec_result.columns, sql
        assert row_scanned == vec_scanned, sql


def test_vectorized_preserves_order_sensitive_results():
    engine = _build_random_engine(99)
    sql = "SELECT id, val FROM t WHERE val IS NOT NULL ORDER BY val, id"
    engine.vectorized = False
    expected = engine.execute(sql).rows
    engine.vectorized = True
    assert engine.execute(sql).rows == expected


# ---------------------------------------------------------------------------
# Codec properties
# ---------------------------------------------------------------------------

_value = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
)


@given(
    rows=st.lists(
        st.tuples(_value, _value, _value), min_size=0, max_size=120
    )
)
@settings(max_examples=60, deadline=None)
def test_codec_round_trip_and_wire_bound(rows):
    columns = ["a", "b", "c"]
    fragment = encode_fragment(columns, rows)
    decoded = decode_fragment(fragment)
    assert len(decoded) == len(rows)
    for got, want in zip(decoded, rows):
        assert len(got) == len(want)
        for g, w in zip(got, want):
            assert type(g) is type(w) and g == w
    # Compressed accounting may never exceed the raw path's.
    assert fragment.wire_bytes <= fragment.raw_bytes
    assert fragment.raw_bytes == estimate_rows_bytes(rows)


def test_codec_empty_fragment():
    fragment = encode_fragment(["a"], [])
    assert fragment.codec == "raw"
    assert decode_fragment(fragment) == []


def test_codec_no_columns():
    rows = [(), (), ()]
    fragment = encode_fragment([], rows)
    assert decode_fragment(fragment) == rows


def test_codec_single_value_dictionary():
    rows = [("constant",)] * 500
    fragment = encode_fragment(["s"], rows)
    assert decode_fragment(fragment) == rows
    # A constant column collapses to one stored value either way.
    assert fragment.wire_bytes < fragment.raw_bytes / 10


def test_codec_nulls_round_trip():
    rows = [(None, 1), (None, None), (None, 2)] * 40
    fragment = encode_fragment(["a", "b"], rows)
    assert decode_fragment(fragment) == rows
    assert fragment.wire_bytes < fragment.raw_bytes


def test_codec_incompressible_falls_back_to_raw():
    rng = random.Random(4)
    rows = [
        ("".join(chr(rng.randrange(33, 127)) for _ in range(24)),)
        for _ in range(300)
    ]
    fragment = encode_fragment(["s"], rows)
    assert fragment.codec == "raw"
    assert fragment.wire_bytes == fragment.raw_bytes
    assert decode_fragment(fragment) == rows


def test_codec_true_one_type_strict():
    # True == 1 == 1.0 in Python; the codec must not collapse them.
    rows = [(True,), (1,), (1.0,), (True,), (1,)] * 30
    fragment = encode_fragment(["x"], rows)
    decoded = decode_fragment(fragment)
    for got, want in zip(decoded, rows):
        assert type(got[0]) is type(want[0])


# ---------------------------------------------------------------------------
# System knobs
# ---------------------------------------------------------------------------

_SCAN = "SELECT acct, balance FROM accounts WHERE balance >= 0"
_AGG = "SELECT COUNT(*), SUM(balance) FROM accounts"


def _run_bank(**knobs):
    system = build_bank_sites(3, 120, **knobs)
    with system:
        scan = system.query("bank", _SCAN)
        agg = system.query("bank", _AGG)
        return {
            "scan_rows": sorted(scan.rows),
            "agg_rows": agg.rows,
            "scan_bytes": scan.bytes_shipped,
            "scan_sim": scan.elapsed_s,
            "messages": scan.trace.message_count,
        }


def test_knobs_off_bit_identical():
    default = _run_bank()
    explicit = _run_bank(vectorized=False, wire_compression=False)
    assert default == explicit


def test_vectorized_same_results_and_accounting():
    base = _run_bank()
    vec = _run_bank(vectorized=True)
    assert vec == base  # rows AND simulated accounting identical


def test_wire_compression_cuts_bytes():
    base = _run_bank()
    comp = _run_bank(wire_compression=True)
    assert comp["scan_rows"] == base["scan_rows"]
    assert comp["agg_rows"] == base["agg_rows"]
    assert comp["messages"] == base["messages"]
    # ISSUE acceptance: >= 30% fewer simulated bytes on the bank scan.
    assert comp["scan_bytes"] <= base["scan_bytes"] * 0.7


def test_wire_compression_explain_shows_codec():
    system = build_bank_sites(2, 80, wire_compression=True)
    with system:
        report = system.query("bank", _SCAN).explain_analyze()
    assert "raw=" in report and "codec=" in report


def test_wire_compression_fragment_cache_round_trip():
    system = build_bank_sites(2, 80, wire_compression=True)
    with system:
        cold = system.query("bank", _SCAN)
        warm = system.query("bank", _SCAN)
        assert sorted(warm.rows) == sorted(cold.rows)
        assert warm.bytes_shipped == 0  # served from the fragment cache
        stats = system.federation_stats()["caches"]["fragcache"]
        assert stats["bytes_saved"] > 0
        assert stats["compression_ratio"] > 1.0


def test_fragment_cache_key_isolated_per_codec():
    from repro.cache.fragments import FragmentCache

    cache = FragmentCache()
    raw_key = cache.key("s", "e", "SELECT 1")
    codec_key = cache.key("s", "e", "SELECT 1", codec="dictrle")
    assert raw_key != codec_key
