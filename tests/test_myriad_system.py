"""Tests for the MyriadSystem facade and remaining workload generators."""

import pytest

from repro.errors import FederationError
from repro.myriad import MyriadSystem
from repro.sql import ORACLE_DIALECT, parse_statement, to_sql
from repro.workloads import build_partitioned_sites, build_two_site_join


class TestFacade:
    def test_add_components(self):
        system = MyriadSystem()
        system.add_oracle("o1")
        system.add_postgres("p1")
        assert system.site_names() == ["o1", "p1"]
        assert system.component("o1").dialect.name == "oracle"
        assert system.gateway("p1").site == "p1"

    def test_duplicate_site_rejected(self):
        system = MyriadSystem()
        system.add_oracle("x")
        with pytest.raises(FederationError):
            system.add_postgres("x")

    def test_unknown_lookups(self):
        system = MyriadSystem()
        with pytest.raises(FederationError):
            system.component("ghost")
        with pytest.raises(FederationError):
            system.gateway("ghost")
        with pytest.raises(FederationError):
            system.federation("ghost")

    def test_federation_lifecycle(self):
        system = MyriadSystem()
        system.create_federation("f1")
        system.create_federation("f2")
        assert system.federation_names() == ["f1", "f2"]
        with pytest.raises(FederationError):
            system.create_federation("F1")  # case-insensitive clash
        system.drop_federation("f1")
        assert system.federation_names() == ["f2"]

    def test_gateways_shared_with_late_components(self):
        """Components added after a federation are still visible to it."""
        system = MyriadSystem()
        fed = system.create_federation("f")
        late = system.add_postgres("late")
        late.dbms.execute("CREATE TABLE t (a INTEGER)")
        late.dbms.execute("INSERT INTO t VALUES (7)")
        late.export_table("t", "t")
        fed.define_relation("r", "SELECT a FROM late.t")
        assert system.query("f", "SELECT a FROM r").rows == [(7,)]

    def test_processor_cached(self):
        system = MyriadSystem()
        system.create_federation("f")
        assert system.processor("f") is system.processor("f")

    def test_default_optimizer_setting(self):
        system = MyriadSystem(default_optimizer="simple")
        gateway = system.add_postgres("s")
        gateway.dbms.execute("CREATE TABLE t (a INTEGER)")
        gateway.export_table("t", "t")
        fed = system.create_federation("f")
        fed.define_relation("r", "SELECT a FROM s.t")
        plan = system.processor("f").plan("SELECT a FROM r")
        assert plan.strategy == "simple"

    def test_bad_default_optimizer(self):
        system = MyriadSystem(default_optimizer="nonsense")
        system.create_federation("f")
        with pytest.raises(FederationError):
            system.processor("f")


class TestWorkloadGenerators:
    def test_two_site_join_determinism(self):
        one = build_two_site_join(50, 50, seed=9)
        two = build_two_site_join(50, 50, seed=9)
        q = "SELECT k FROM lhs ORDER BY k"
        assert one.query("synth", q).rows == two.query("synth", q).rows

    def test_two_site_join_match_fraction(self):
        system = build_two_site_join(100, 400, match_fraction=0.25, seed=4)
        matches = system.query(
            "synth",
            "SELECT COUNT(*) FROM lhs l JOIN rhs r ON l.k = r.k",
        ).scalar()
        # binomial around 100; generous bounds
        assert 50 < matches < 160

    def test_partitioned_sites_shape(self):
        system = build_partitioned_sites(3, 20, seed=2)
        assert len(system.site_names()) == 3
        total = system.query(
            "synth", "SELECT COUNT(*) FROM measurements"
        ).scalar()
        assert total == 60
        # keys globally unique across partitions
        distinct = system.query(
            "synth", "SELECT COUNT(DISTINCT k) FROM measurements"
        ).scalar()
        assert distinct == 60

    def test_partitioned_alternates_dialects(self):
        system = build_partitioned_sites(2, 5)
        assert system.component("p0").dialect.name == "postgres"
        assert system.component("p1").dialect.name == "oracle"


class TestOracleTopN:
    def test_order_by_limit_wraps_in_derived_table(self):
        stmt = parse_statement("SELECT a FROM t ORDER BY a DESC LIMIT 3")
        text = to_sql(stmt, ORACLE_DIALECT)
        assert "ROWNUM <= 3" in text
        assert text.index("ORDER BY") < text.index("ROWNUM")
        assert "__topn" in text

    def test_plain_limit_stays_inline(self):
        stmt = parse_statement("SELECT a FROM t WHERE a > 1 LIMIT 3")
        text = to_sql(stmt, ORACLE_DIALECT)
        assert "__topn" not in text
        assert "ROWNUM <= 3" in text

    def test_topn_through_oracle_dbms(self):
        from repro.localdb import OracleDBMS

        oracle = OracleDBMS("o")
        oracle.execute("CREATE TABLE t (a INTEGER PRIMARY KEY)")
        for i in range(10):
            oracle.execute(f"INSERT INTO t VALUES ({i})")
        stmt = parse_statement("SELECT a FROM t ORDER BY a DESC LIMIT 3")
        text = to_sql(stmt, ORACLE_DIALECT)
        result = oracle.execute(text)
        assert result.rows == [(9,), (8,), (7,)]


class TestLifecycle:
    """MyriadSystem.close() / context-manager support: no leaked threads,
    no unflushed WAL tails."""

    def _bank(self):
        from repro.workloads import build_bank_sites

        return build_bank_sites(2, 2, query_timeout=1.0)

    def test_close_flushes_every_wal(self):
        system = self._bank()
        gtm_wal = system.transactions.wal
        # leave an unflushed tail on the coordinator and a participant log
        from repro.concurrency.wal import LogRecordType

        gtm_wal.append(LogRecordType.COORD_COMMIT, "G_TAIL", flush=False)
        assert gtm_wal.flushed_lsn < gtm_wal._next_lsn - 1
        system.close()
        assert gtm_wal.flushed_lsn == gtm_wal._next_lsn - 1
        for dbms in system.components.values():
            wal = dbms.transactions.wal
            assert wal.flushed_lsn == wal._next_lsn - 1

    def test_close_stops_deadlock_monitor_thread(self):
        system = self._bank()
        monitor = system.start_deadlock_monitor(interval_s=0.01)
        assert system.deadlock_monitor is monitor
        thread = monitor._thread
        assert thread is not None and thread.is_alive()
        system.close()
        assert system.deadlock_monitor is None
        assert monitor._thread is None  # stop() joined and discarded it
        assert not thread.is_alive()

    def test_start_deadlock_monitor_is_cached(self):
        system = self._bank()
        first = system.start_deadlock_monitor(interval_s=0.01)
        assert system.start_deadlock_monitor() is first
        system.close()

    def test_close_is_idempotent(self):
        system = self._bank()
        system.start_deadlock_monitor(interval_s=0.01)
        system.close()
        system.close()  # second close must be a no-op, not an error
        assert system.deadlock_monitor is None

    def test_context_manager_closes_on_exit(self):
        with self._bank() as system:
            system.start_deadlock_monitor(interval_s=0.01)
            thread = system.deadlock_monitor._thread
            assert float(system.query("bank", "SELECT SUM(balance) FROM accounts").scalar()) == 4000.0
        assert system.deadlock_monitor is None
        assert not thread.is_alive()

    def test_context_manager_closes_on_error(self):
        with pytest.raises(RuntimeError):
            with self._bank() as system:
                system.start_deadlock_monitor(interval_s=0.01)
                thread = system.deadlock_monitor._thread
                raise RuntimeError("boom")
        assert not thread.is_alive()
