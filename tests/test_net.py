"""Simulated-network tests: accounting, link profiles, parallel sections."""

import pytest

from repro.errors import NetworkError
from repro.net import (
    LinkProfile,
    MessageTrace,
    Network,
    estimate_rows_bytes,
    estimate_value_bytes,
)


class TestLinkProfile:
    def test_cost_formula(self):
        link = LinkProfile(latency_s=0.01, bandwidth_bytes_per_s=1000.0)
        assert link.cost(0) == pytest.approx(0.01)
        assert link.cost(1000) == pytest.approx(1.01)

    def test_default_profile_is_10base_t(self):
        link = LinkProfile()
        # 1.25 MB/s, 2ms latency
        assert link.cost(1_250_000) == pytest.approx(1.002)


class TestNetwork:
    def test_send_accounts_messages_and_bytes(self):
        net = Network()
        net.add_site("a")
        net.add_site("b")
        trace = MessageTrace()
        cost = net.send("a", "b", 100, "query", trace)
        assert cost > 0
        assert net.total_messages == 1
        assert net.total_bytes == 100
        assert trace.message_count == 1
        assert trace.total_bytes == 100
        assert trace.elapsed_s == pytest.approx(cost)

    def test_local_send_is_free(self):
        net = Network()
        net.add_site("a")
        assert net.send("a", "a", 1000, "query") == 0.0
        assert net.total_messages == 0

    def test_unknown_site_rejected(self):
        net = Network()
        net.add_site("a")
        with pytest.raises(NetworkError):
            net.send("a", "nope", 1, "query")
        with pytest.raises(NetworkError):
            net.send("nope", "a", 1, "query")

    def test_per_link_override(self):
        net = Network()
        net.add_site("a")
        net.add_site("b")
        slow = LinkProfile(latency_s=1.0, bandwidth_bytes_per_s=10.0)
        net.set_link("a", "b", slow)
        assert net.send("a", "b", 10, "query") == pytest.approx(2.0)
        # reverse direction keeps the default
        assert net.send("b", "a", 10, "query") < 0.1

    def test_set_link_requires_sites(self):
        net = Network()
        net.add_site("a")
        with pytest.raises(NetworkError):
            net.set_link("a", "missing", LinkProfile())


class TestMessageTrace:
    def test_sequential_accumulation(self):
        trace = MessageTrace()
        trace.add_compute(1.0)
        trace.add_compute(2.0)
        assert trace.elapsed_s == pytest.approx(3.0)

    def test_parallel_takes_max(self):
        trace = MessageTrace()
        trace.begin_parallel()
        with trace.branch("x"):
            trace.add_compute(1.0)
        with trace.branch("y"):
            trace.add_compute(5.0)
        trace.end_parallel()
        assert trace.elapsed_s == pytest.approx(5.0)

    def test_parallel_then_sequential(self):
        trace = MessageTrace()
        trace.begin_parallel()
        with trace.branch("x"):
            trace.add_compute(2.0)
        trace.end_parallel()
        trace.add_compute(1.0)
        assert trace.elapsed_s == pytest.approx(3.0)

    def test_nested_parallel(self):
        trace = MessageTrace()
        trace.begin_parallel()
        with trace.branch("outer1"):
            trace.add_compute(1.0)
            trace.begin_parallel()
            with trace.branch("inner1"):
                trace.add_compute(4.0)
            with trace.branch("inner2"):
                trace.add_compute(2.0)
            trace.end_parallel()
        with trace.branch("outer2"):
            trace.add_compute(3.0)
        trace.end_parallel()
        assert trace.elapsed_s == pytest.approx(5.0)

    def test_empty_parallel_costs_nothing(self):
        trace = MessageTrace()
        trace.begin_parallel()
        trace.end_parallel()
        assert trace.elapsed_s == 0.0

    def test_bytes_by_purpose(self):
        net = Network()
        net.add_site("a")
        net.add_site("b")
        trace = MessageTrace()
        net.send("a", "b", 10, "query", trace)
        net.send("b", "a", 90, "result", trace)
        assert trace.bytes_by_purpose() == {"query": 10, "result": 90}


class TestSizing:
    def test_value_bytes(self):
        assert estimate_value_bytes(None) == 1
        assert estimate_value_bytes(True) == 1
        assert estimate_value_bytes(5) == 8
        assert estimate_value_bytes(5.0) == 8
        assert estimate_value_bytes("abc") == 7

    def test_rows_bytes_includes_framing(self):
        assert estimate_rows_bytes([(1,), (2,)]) == 2 * (8 + 8)

    def test_empty_rows(self):
        assert estimate_rows_bytes([]) == 0


class TestTraceMisuse:
    """The cost-attribution contract of MessageTrace parallel sections."""

    def test_branch_without_open_section_raises(self):
        trace = MessageTrace()
        with pytest.raises(NetworkError):
            trace.branch("x")

    def test_end_parallel_without_begin_raises(self):
        trace = MessageTrace()
        with pytest.raises(NetworkError):
            trace.end_parallel()

    def test_branch_after_section_closed_raises(self):
        trace = MessageTrace()
        trace.begin_parallel()
        trace.end_parallel()
        with pytest.raises(NetworkError):
            trace.branch("late")

    def test_balanced_property(self):
        trace = MessageTrace()
        assert trace.balanced
        trace.begin_parallel()
        assert not trace.balanced
        with trace.branch("x"):
            assert not trace.balanced
        trace.end_parallel()
        assert trace.balanced

    def test_branch_elapsed_reads_open_section(self):
        trace = MessageTrace()
        trace.begin_parallel()
        with trace.branch("x"):
            trace.add_compute(2.0)
        assert trace.branch_elapsed("x") == pytest.approx(2.0)
        assert trace.branch_elapsed("never-ran") == 0.0
        trace.end_parallel()
        with pytest.raises(NetworkError):
            trace.branch_elapsed("x")

    def test_cost_outside_branch_accrues_sequentially(self):
        # documented fallback: coordinator-side work inside a section but
        # outside any branch goes straight to elapsed_s
        trace = MessageTrace()
        trace.begin_parallel()
        trace.add_compute(1.0)
        with trace.branch("x"):
            trace.add_compute(5.0)
        trace.end_parallel()
        assert trace.elapsed_s == pytest.approx(1.0 + 5.0)


class TestNestedParallelWithMessages:
    def test_message_costs_roll_up_like_compute(self):
        net = Network()
        for site in ("fed", "a", "b"):
            net.add_site(site)
        slow = LinkProfile(latency_s=1.0, bandwidth_bytes_per_s=1e9)
        fast = LinkProfile(latency_s=0.25, bandwidth_bytes_per_s=1e9)
        net.set_link("fed", "a", slow)
        net.set_link("fed", "b", fast)

        trace = MessageTrace()
        trace.begin_parallel()
        with trace.branch("a"):
            net.send("fed", "a", 10, "query", trace)  # ~1.0s
        with trace.branch("b"):
            net.send("fed", "b", 10, "query", trace)  # ~0.25s
            trace.begin_parallel()
            with trace.branch("b-inner1"):
                net.send("fed", "b", 10, "query", trace)  # ~0.25s
            with trace.branch("b-inner2"):
                net.send("fed", "b", 10, "query", trace)  # ~0.25s
            trace.end_parallel()
        trace.end_parallel()
        # max(a=1.0, b=0.25 + max(0.25, 0.25)) = 1.0
        assert trace.elapsed_s == pytest.approx(1.0, rel=1e-6)
        assert trace.message_count == 4
        assert trace.balanced


class TestExecutorTraceBalance:
    """Regression: a fetch failure must not corrupt a caller-owned trace.

    GlobalExecutor.execute opened a parallel section per stage but never
    closed it when _run_fetch raised (dropped message, gateway timeout), so
    a trace reused across statements — every global transaction's — silently
    attributed all later costs to a dead branch.
    """

    def _failing_system(self):
        from repro.workloads import build_two_site_join

        system = build_two_site_join(10, 10)
        system.inject_faults(seed=1).drop_next(1, purpose="query")
        # These tests need the fetch to fail *hard*: disable the
        # executor's transient-loss retry so one drop kills the query.
        system.processor("synth").executor.fetch_retry_limit = 0
        return system

    def test_trace_stays_balanced_when_fetch_raises(self):
        from repro.errors import MessageDropped

        system = self._failing_system()
        trace = MessageTrace()
        processor = system.processor("synth")
        with pytest.raises(MessageDropped):
            processor.execute(
                "SELECT k, flt FROM lhs", trace=trace, optimizer="simple"
            )
        assert trace.balanced

    def test_later_costs_land_in_elapsed_after_failure(self):
        from repro.errors import MessageDropped

        system = self._failing_system()
        trace = MessageTrace()
        processor = system.processor("synth")
        with pytest.raises(MessageDropped):
            processor.execute(
                "SELECT k, flt FROM lhs", trace=trace, optimizer="simple"
            )
        before = trace.elapsed_s
        trace.add_compute(1.0)  # e.g. the transaction's next statement
        assert trace.elapsed_s == pytest.approx(before + 1.0)

    def test_same_trace_usable_for_a_retry(self):
        from repro.errors import MessageDropped

        system = self._failing_system()
        trace = MessageTrace()
        processor = system.processor("synth")
        with pytest.raises(MessageDropped):
            processor.execute(
                "SELECT k, flt FROM lhs", trace=trace, optimizer="simple"
            )
        result = processor.execute(
            "SELECT k, flt FROM lhs", trace=trace, optimizer="simple"
        )
        assert len(result.rows) == 10
        assert trace.balanced
