"""Simulated-network tests: accounting, link profiles, parallel sections."""

import pytest

from repro.errors import NetworkError
from repro.net import (
    LinkProfile,
    MessageTrace,
    Network,
    estimate_rows_bytes,
    estimate_value_bytes,
)


class TestLinkProfile:
    def test_cost_formula(self):
        link = LinkProfile(latency_s=0.01, bandwidth_bytes_per_s=1000.0)
        assert link.cost(0) == pytest.approx(0.01)
        assert link.cost(1000) == pytest.approx(1.01)

    def test_default_profile_is_10base_t(self):
        link = LinkProfile()
        # 1.25 MB/s, 2ms latency
        assert link.cost(1_250_000) == pytest.approx(1.002)


class TestNetwork:
    def test_send_accounts_messages_and_bytes(self):
        net = Network()
        net.add_site("a")
        net.add_site("b")
        trace = MessageTrace()
        cost = net.send("a", "b", 100, "query", trace)
        assert cost > 0
        assert net.total_messages == 1
        assert net.total_bytes == 100
        assert trace.message_count == 1
        assert trace.total_bytes == 100
        assert trace.elapsed_s == pytest.approx(cost)

    def test_local_send_is_free(self):
        net = Network()
        net.add_site("a")
        assert net.send("a", "a", 1000, "query") == 0.0
        assert net.total_messages == 0

    def test_unknown_site_rejected(self):
        net = Network()
        net.add_site("a")
        with pytest.raises(NetworkError):
            net.send("a", "nope", 1, "query")
        with pytest.raises(NetworkError):
            net.send("nope", "a", 1, "query")

    def test_per_link_override(self):
        net = Network()
        net.add_site("a")
        net.add_site("b")
        slow = LinkProfile(latency_s=1.0, bandwidth_bytes_per_s=10.0)
        net.set_link("a", "b", slow)
        assert net.send("a", "b", 10, "query") == pytest.approx(2.0)
        # reverse direction keeps the default
        assert net.send("b", "a", 10, "query") < 0.1

    def test_set_link_requires_sites(self):
        net = Network()
        net.add_site("a")
        with pytest.raises(NetworkError):
            net.set_link("a", "missing", LinkProfile())


class TestMessageTrace:
    def test_sequential_accumulation(self):
        trace = MessageTrace()
        trace.add_compute(1.0)
        trace.add_compute(2.0)
        assert trace.elapsed_s == pytest.approx(3.0)

    def test_parallel_takes_max(self):
        trace = MessageTrace()
        trace.begin_parallel()
        with trace.branch("x"):
            trace.add_compute(1.0)
        with trace.branch("y"):
            trace.add_compute(5.0)
        trace.end_parallel()
        assert trace.elapsed_s == pytest.approx(5.0)

    def test_parallel_then_sequential(self):
        trace = MessageTrace()
        trace.begin_parallel()
        with trace.branch("x"):
            trace.add_compute(2.0)
        trace.end_parallel()
        trace.add_compute(1.0)
        assert trace.elapsed_s == pytest.approx(3.0)

    def test_nested_parallel(self):
        trace = MessageTrace()
        trace.begin_parallel()
        with trace.branch("outer1"):
            trace.add_compute(1.0)
            trace.begin_parallel()
            with trace.branch("inner1"):
                trace.add_compute(4.0)
            with trace.branch("inner2"):
                trace.add_compute(2.0)
            trace.end_parallel()
        with trace.branch("outer2"):
            trace.add_compute(3.0)
        trace.end_parallel()
        assert trace.elapsed_s == pytest.approx(5.0)

    def test_empty_parallel_costs_nothing(self):
        trace = MessageTrace()
        trace.begin_parallel()
        trace.end_parallel()
        assert trace.elapsed_s == 0.0

    def test_bytes_by_purpose(self):
        net = Network()
        net.add_site("a")
        net.add_site("b")
        trace = MessageTrace()
        net.send("a", "b", 10, "query", trace)
        net.send("b", "a", 90, "result", trace)
        assert trace.bytes_by_purpose() == {"query": 10, "result": 90}


class TestSizing:
    def test_value_bytes(self):
        assert estimate_value_bytes(None) == 1
        assert estimate_value_bytes(True) == 1
        assert estimate_value_bytes(5) == 8
        assert estimate_value_bytes(5.0) == 8
        assert estimate_value_bytes("abc") == 7

    def test_rows_bytes_includes_framing(self):
        assert estimate_rows_bytes([(1,), (2,)]) == 2 * (8 + 8)

    def test_empty_rows(self):
        assert estimate_rows_bytes([]) == 0
