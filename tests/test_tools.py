"""Tests for the schema browser and the query-interface REPL."""

import pytest

from repro.tools import QueryInterface, browser


class TestBrowser:
    def test_list_components(self, university):
        text = browser.list_components(university)
        assert "twin_cities [oracle]" in text
        assert "duluth [postgres]" in text
        assert "tc_student" in text

    def test_list_exports(self, university):
        text = browser.list_exports(university, "twin_cities")
        assert "student" in text
        assert "name<-sname" in text

    def test_list_federations(self, university):
        text = browser.list_federations(university)
        assert "university" in text
        assert "staff_directory" in text

    def test_describe_relation(self, university):
        text = browser.describe_relation(university, "university", "student")
        assert "columns: sid, name, gpa, major, campus" in text
        assert "twin_cities.student" in text
        assert "definition: SELECT" in text

    def test_describe_export(self, university):
        text = browser.describe_export(university, "duluth", "student")
        assert "rows: 60" in text
        assert "PRIMARY KEY (sid)" in text

    def test_format_result(self):
        text = browser.format_result(
            ["a", "long_column"], [(1, "x"), (None, 2.5)]
        )
        assert "long_column" in text
        assert "NULL" in text
        assert "(2 rows)" in text

    def test_format_result_truncation(self):
        text = browser.format_result(["n"], [(i,) for i in range(100)], limit=5)
        assert "(100 rows total)" in text


class TestREPL:
    @pytest.fixture
    def ui(self, university):
        return QueryInterface(university, federation="university")

    def test_defaults_to_existing_federation(self, university):
        names_before = university.federation_names()
        ui = QueryInterface(university)
        assert ui.current_federation in names_before

    def test_query_returns_table_and_footer(self, ui):
        out = ui.run_line("SELECT COUNT(*) FROM student")
        assert "120" in out
        assert "msgs" in out and "bytes" in out

    def test_commands(self, ui):
        assert "twin_cities" in ui.run_line("\\components")
        assert "student" in ui.run_line("\\relations")
        assert "Integrated relation course" in ui.run_line("\\describe course")
        assert "GlobalPlan" in ui.run_line("\\explain SELECT sid FROM student")
        assert "GlobalPlan[simple]" in ui.run_line(
            "\\explain simple SELECT sid FROM student"
        )

    def test_optimizer_switch(self, ui):
        assert "simple" in ui.run_line("\\optimizer simple")
        assert ui.optimizer == "simple"
        assert "usage" in ui.run_line("\\optimizer bogus")

    def test_unknown_command(self, ui):
        assert "unknown command" in ui.run_line("\\frobnicate")

    def test_error_reported_not_raised(self, ui):
        out = ui.run_line("SELECT * FROM no_such_relation")
        assert out.startswith("error:")

    def test_empty_line(self, ui):
        assert ui.run_line("   ") == ""

    def test_define_and_drop_relation(self, ui):
        out = ui.run_line(
            "\\define honor_roll AS SELECT name, gpa FROM twin_cities.student "
            "WHERE gpa > 3.8"
        )
        assert "defined" in out
        assert "honor_roll" in ui.run_line("\\relations")
        result = ui.run_line("SELECT COUNT(*) FROM honor_roll")
        assert "error" not in result
        assert "dropped" in ui.run_line("\\drop relation honor_roll")

    def test_transaction_flow(self, ui):
        assert "started" in ui.run_line("BEGIN")
        out = ui.run_line(
            "\\at duluth UPDATE payroll_staff SET salary = salary + 1 "
            "WHERE employee = 1"
        )
        assert "row(s) affected" in out
        assert "committed" in ui.run_line("COMMIT")

    def test_rollback_flow(self, ui, university):
        before = university.query(
            "university", "SELECT SUM(salary) FROM staff_directory"
        ).scalar()
        ui.run_line("BEGIN")
        ui.run_line(
            "\\at duluth UPDATE payroll_staff SET salary = 0"
        )
        assert "aborted" in ui.run_line("ROLLBACK")
        after = university.query(
            "university", "SELECT SUM(salary) FROM staff_directory"
        ).scalar()
        assert after == pytest.approx(before)

    def test_at_requires_transaction(self, ui):
        assert "requires an open" in ui.run_line("\\at duluth SELECT 1")

    def test_commit_without_begin(self, ui):
        assert "error" in ui.run_line("COMMIT")

    def test_double_begin(self, ui):
        ui.run_line("BEGIN")
        assert "already open" in ui.run_line("BEGIN")
        ui.run_line("ROLLBACK")

    def test_create_federation_and_use(self, ui):
        assert "created" in ui.run_line("\\create federation scratch")
        assert ui.current_federation == "scratch"
        assert "using federation university" in ui.run_line("\\use university")

    def test_export_command(self, ui, university):
        university.component("duluth").execute(
            "CREATE TABLE extra (id INTEGER PRIMARY KEY)"
        )
        out = ui.run_line("\\export duluth extra AS extra_rel")
        assert "exported duluth.extra_rel" in out

    def test_transactional_read_through_repl(self, ui):
        ui.run_line("BEGIN")
        out = ui.run_line("SELECT COUNT(*) FROM student")
        assert "120" in out
        ui.run_line("COMMIT")

    def test_help(self, ui):
        assert "\\components" in ui.run_line("\\help")

    def test_run_script(self, ui):
        outputs = ui.run_script("\\relations\nSELECT COUNT(*) FROM course")
        assert len(outputs) == 2
