"""Odds-and-ends coverage: error hierarchy, AST helpers, small API corners."""

import pytest

from repro import errors
from repro.sql import ast, parse_expression, parse_statement


class TestErrorHierarchy:
    def test_everything_is_myriad_error(self):
        for exc_class in (
            errors.LexerError,
            errors.ParseError,
            errors.CatalogError,
            errors.SQLTypeError,
            errors.IntegrityError,
            errors.ExecutionError,
            errors.TransactionError,
            errors.TransactionAborted,
            errors.DeadlockError,
            errors.LockTimeoutError,
            errors.TwoPhaseCommitError,
            errors.FederationError,
            errors.GatewayError,
            errors.GatewayTimeout,
            errors.NetworkError,
        ):
            assert issubclass(exc_class, errors.MyriadError)

    def test_timeouts_are_aborts(self):
        assert issubclass(errors.LockTimeoutError, errors.TransactionAborted)
        assert issubclass(errors.DeadlockError, errors.TransactionAborted)

    def test_reasons(self):
        assert errors.LockTimeoutError().reason == "timeout"
        assert errors.DeadlockError().reason == "deadlock"
        assert errors.GatewayTimeout(site="x").site == "x"


class TestASTHelpers:
    def test_split_and_conjoin_roundtrip(self):
        expr = parse_expression("a = 1 AND (b = 2 AND c = 3) AND d = 4")
        parts = ast.split_conjuncts(expr)
        assert len(parts) == 4
        rebuilt = ast.conjoin(parts)
        assert ast.split_conjuncts(rebuilt) == parts

    def test_conjoin_empty_and_single(self):
        assert ast.conjoin([]) is None
        single = parse_expression("a = 1")
        assert ast.conjoin([single]) is single

    def test_split_does_not_cross_or(self):
        expr = parse_expression("a = 1 OR b = 2")
        assert ast.split_conjuncts(expr) == [expr]

    def test_column_refs_and_tables(self):
        expr = parse_expression("t.a + u.b + c")
        refs = ast.column_refs(expr)
        assert {str(r) for r in refs} == {"t.a", "u.b", "c"}
        assert ast.referenced_tables(expr) == {"t", "u"}

    def test_contains_aggregate_nested(self):
        assert ast.contains_aggregate(parse_expression("1 + SUM(x)"))
        assert not ast.contains_aggregate(parse_expression("UPPER(x)"))

    def test_transform_is_bottom_up(self):
        visits = []

        def record(node):
            visits.append(type(node).__name__)
            return node

        ast.transform_expression(parse_expression("a + 1"), record)
        assert visits == ["ColumnRef", "Literal", "BinaryOp"]

    def test_walk_preorder(self):
        nodes = list(ast.walk_expressions(parse_expression("a + b * c")))
        assert type(nodes[0]).__name__ == "BinaryOp"
        assert len(nodes) == 5

    def test_select_item_output_name(self):
        stmt = parse_statement("SELECT t.col, 1 + 1, x AS y FROM t")
        names = [i.output_name for i in stmt.items]
        assert names == ["col", "?column?", "y"]


class TestGroupByAlias:
    def test_group_by_select_alias(self, engine):
        result = engine.execute(
            "SELECT deptno * 10 AS dk, COUNT(*) FROM emp GROUP BY dk ORDER BY dk"
        )
        assert result.rows == [(100, 3), (200, 5), (300, 6)]


class TestGatewayDefaults:
    def test_default_timeout_applies(self):
        from repro.gateway import Gateway
        from repro.localdb import PostgresDBMS
        from repro.net import Network
        from repro.errors import GatewayTimeout

        net = Network()
        dbms = PostgresDBMS("s")
        dbms.execute("CREATE TABLE t (a INTEGER)")
        dbms.execute("INSERT INTO t VALUES (1)")
        gateway = Gateway(dbms, net, default_timeout=0.05)
        gateway.export_table("t", "t")

        blocker = dbms.connect()
        blocker.begin()
        blocker.execute("UPDATE t SET a = 2")
        # Autocommit reads are snapshot reads now: no lock wait, old value.
        assert gateway.execute_query("SELECT * FROM t").rows == [(1,)]
        # A transactional (locking) read picks up the gateway default.
        gateway.begin("g1")
        with pytest.raises(GatewayTimeout):
            gateway.execute_query(
                "SELECT * FROM t", global_id="g1"
            )  # no explicit timeout
        gateway.abort("g1")
        blocker.rollback()

    def test_explicit_timeout_overrides_default(self):
        from repro.gateway import Gateway
        from repro.localdb import PostgresDBMS
        from repro.net import Network

        net = Network()
        dbms = PostgresDBMS("s")
        dbms.execute("CREATE TABLE t (a INTEGER)")
        gateway = Gateway(dbms, net, default_timeout=0.01)
        gateway.export_table("t", "t")
        # generous explicit timeout, nothing blocking: must succeed
        result = gateway.execute_query("SELECT * FROM t", timeout=5.0)
        assert result.rows == []


class TestREPLStats:
    def test_stats_command(self, university):
        from repro.tools import QueryInterface

        ui = QueryInterface(university, federation="university")
        out = ui.run_line("\\stats duluth student")
        assert "rows: 60" in out
        assert "usage" in ui.run_line("\\stats duluth")


class TestWholeBlockExplain:
    def test_describe_shows_shipped_block(self):
        from repro.workloads import build_partitioned_sites

        system = build_partitioned_sites(2, 30, seed=6)
        text = system.explain(
            "synth",
            "SELECT grp, COUNT(*) FROM measurements GROUP BY grp",
            "cost",
        )
        assert "SHIPPED BLOCK" in text
        assert "GROUP BY" in text
