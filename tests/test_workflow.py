"""Tests for the saga workflow layer (paper §3 future work)."""

import pytest

from repro.errors import TransactionAborted
from repro.workflow import (
    WorkflowEngine,
    WorkflowError,
    WorkflowStatus,
    WorkflowStep,
    recover_workflows,
)
from repro.workloads import build_bank_sites, total_balance


def transfer_step(name, from_site, from_acct, to_site, to_acct, amount):
    def action(txn, ctx):
        txn.execute(
            from_site,
            f"UPDATE account SET balance = balance - {amount} "
            f"WHERE acct = {from_acct}",
        )
        txn.execute(
            to_site,
            f"UPDATE account SET balance = balance + {amount} "
            f"WHERE acct = {to_acct}",
        )
        ctx.setdefault("transfers", []).append(name)

    def compensation(txn, ctx):
        txn.execute(
            from_site,
            f"UPDATE account SET balance = balance + {amount} "
            f"WHERE acct = {from_acct}",
        )
        txn.execute(
            to_site,
            f"UPDATE account SET balance = balance - {amount} "
            f"WHERE acct = {to_acct}",
        )

    return WorkflowStep(name, action, compensation)


def failing_step(name="boom"):
    def action(txn, ctx):
        txn.execute("b0", "UPDATE account SET balance = balance + 0 WHERE acct = 0")
        raise TransactionAborted("simulated business failure")

    return WorkflowStep(name, action)


@pytest.fixture
def bank():
    return build_bank_sites(3, 2, query_timeout=1.0)


class TestHappyPath:
    def test_multi_step_workflow_commits(self, bank):
        engine = WorkflowEngine(bank)
        run = engine.run(
            [
                transfer_step("s1", "b0", 0, "b1", 2, 100),
                transfer_step("s2", "b1", 2, "b2", 4, 50),
                transfer_step("s3", "b2", 4, "b0", 0, 25),
            ]
        )
        assert run.status is WorkflowStatus.COMMITTED
        assert run.completed_steps == ["s1", "s2", "s3"]
        assert engine.committed == 1
        assert total_balance(bank) == 6000.0
        # each step was its own global transaction
        assert bank.transactions.commits == 3

    def test_context_flows_between_steps(self, bank):
        engine = WorkflowEngine(bank)

        def read_balance(txn, ctx):
            ctx["balance"] = float(
                txn.execute(
                    "b0", "SELECT balance FROM account WHERE acct = 0"
                ).scalar()
            )

        def spend_half(txn, ctx):
            half = ctx["balance"] / 2
            txn.execute(
                "b0",
                f"UPDATE account SET balance = balance - {half} WHERE acct = 0",
            )

        run = engine.run(
            [
                WorkflowStep("read", read_balance),
                WorkflowStep("spend", spend_half),
            ]
        )
        assert run.context["balance"] == 1000.0
        value = bank.query(
            "bank", "SELECT balance FROM accounts WHERE acct = 0"
        ).scalar()
        assert float(value) == 500.0

    def test_history_is_durable(self, bank):
        engine = WorkflowEngine(bank)
        run = engine.run([transfer_step("s1", "b0", 0, "b1", 2, 10)])
        history = engine.history(run.workflow_id)
        assert history[0] == "begin"
        assert history[-1] == "committed"
        engine.log.simulate_crash()
        assert engine.history(run.workflow_id)  # flushed, survives


class TestCompensation:
    def test_failure_compensates_completed_steps(self, bank):
        engine = WorkflowEngine(bank)
        with pytest.raises(WorkflowError) as exc:
            engine.run(
                [
                    transfer_step("s1", "b0", 0, "b1", 2, 100),
                    transfer_step("s2", "b1", 2, "b2", 4, 50),
                    failing_step("s3"),
                ]
            )
        assert exc.value.compensated
        assert engine.compensated == 1
        # Everything semantically undone.
        assert total_balance(bank) == 6000.0
        for acct, expected in ((0, 1000.0), (2, 1000.0), (4, 1000.0)):
            value = bank.query(
                "bank", f"SELECT balance FROM accounts WHERE acct = {acct}"
            ).scalar()
            assert float(value) == expected

    def test_first_step_failure_needs_no_compensation(self, bank):
        engine = WorkflowEngine(bank)
        with pytest.raises(WorkflowError) as exc:
            engine.run([failing_step("s1")])
        assert exc.value.compensated
        assert total_balance(bank) == 6000.0

    def test_step_retry(self, bank):
        engine = WorkflowEngine(bank)
        attempts = []

        def flaky(txn, ctx):
            attempts.append(1)
            if len(attempts) < 3:
                raise TransactionAborted("transient")
            txn.execute(
                "b0", "UPDATE account SET balance = balance + 1 WHERE acct = 0"
            )

        run = engine.run(
            [WorkflowStep("flaky", flaky)], max_attempts_per_step=3
        )
        assert run.status is WorkflowStatus.COMMITTED
        assert len(attempts) == 3

    def test_failed_compensation_marks_stuck(self, bank):
        engine = WorkflowEngine(bank)

        def bad_compensation(txn, ctx):
            raise TransactionAborted("compensation broken")

        step1 = transfer_step("s1", "b0", 0, "b1", 2, 10)
        step1.compensation = bad_compensation
        with pytest.raises(WorkflowError) as exc:
            engine.run([step1, failing_step("s2")])
        assert not exc.value.compensated
        assert engine.stuck == 1
        run = list(engine.runs.values())[0]
        assert run.status is WorkflowStatus.STUCK

    def test_unexpected_exception_propagates_after_abort(self, bank):
        engine = WorkflowEngine(bank)

        def buggy(txn, ctx):
            raise ValueError("programming error")

        with pytest.raises(ValueError):
            engine.run([WorkflowStep("buggy", buggy)])
        # the step transaction was aborted, nothing leaked
        assert total_balance(bank) == 6000.0


class TestRecovery:
    def test_recover_half_finished_workflow(self, bank):
        engine = WorkflowEngine(bank)
        steps = [
            transfer_step("s1", "b0", 0, "b1", 2, 100),
            transfer_step("s2", "b1", 2, "b2", 4, 50),
        ]
        # Simulate a crash after s1: run only the first step manually.
        run = engine.runs.setdefault(
            "W_CRASH",
            __import__("repro.workflow.saga", fromlist=["WorkflowRun"]).WorkflowRun(
                workflow_id="W_CRASH",
                step_names=["s1", "s2"],
            ),
        )
        assert engine._execute_step(run, steps[0], 1)
        run.completed_steps.append("s1")

        recovered = recover_workflows(
            engine, {step.name: step for step in steps}
        )
        assert recovered == ["W_CRASH"]
        assert run.status is WorkflowStatus.COMPENSATED
        assert total_balance(bank) == 6000.0
        value = bank.query(
            "bank", "SELECT balance FROM accounts WHERE acct = 0"
        ).scalar()
        assert float(value) == 1000.0

    def test_recovery_ignores_finished_workflows(self, bank):
        engine = WorkflowEngine(bank)
        engine.run([transfer_step("s1", "b0", 0, "b1", 2, 10)])
        assert recover_workflows(engine, {}) == []
