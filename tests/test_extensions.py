"""Tests for the extension features: fault injection, recovery, federated
DML, and the active global deadlock monitor."""

import pytest

from repro.errors import FederationError, TwoPhaseCommitError
from repro.schema import resolve_updatable
from repro.schema.integration import view_relation
from repro.txn import GlobalDeadlockMonitor
from repro.workloads import (
    build_bank_sites,
    build_university_system,
    run_contention,
    total_balance,
)


class TestVoteNoFaultInjection:
    def test_participant_vote_no_aborts_everything(self):
        bank = build_bank_sites(3, 4)
        bank.gateways["b2"].fail_next_prepares = 1
        txn = bank.begin_transaction()
        for site in ("b0", "b1", "b2"):
            txn.execute(site, "UPDATE account SET balance = 0 WHERE acct = 0")
        with pytest.raises(TwoPhaseCommitError):
            txn.commit()
        assert total_balance(bank) == 12000.0
        assert bank.transactions.vote_no_aborts == 1
        assert bank.transactions.commits == 0

    def test_fault_is_one_shot(self):
        bank = build_bank_sites(2, 4)
        bank.gateways["b1"].fail_next_prepares = 1
        txn = bank.begin_transaction()
        txn.execute("b0", "UPDATE account SET balance = balance - 1 WHERE acct = 0")
        txn.execute("b1", "UPDATE account SET balance = balance + 1 WHERE acct = 4")
        with pytest.raises(TwoPhaseCommitError):
            txn.commit()
        # The next transaction commits normally.
        txn = bank.begin_transaction()
        txn.execute("b0", "UPDATE account SET balance = balance - 1 WHERE acct = 0")
        txn.execute("b1", "UPDATE account SET balance = balance + 1 WHERE acct = 4")
        txn.commit()
        assert bank.transactions.commits == 1


class TestDroppedCommitRecovery:
    def test_in_doubt_branch_committed_by_recovery(self):
        bank = build_bank_sites(2, 4)
        bank.gateways["b1"].drop_next_commits = 1
        txn = bank.begin_transaction()
        txn.execute("b0", "UPDATE account SET balance = balance - 50 WHERE acct = 0")
        txn.execute("b1", "UPDATE account SET balance = balance + 50 WHERE acct = 4")
        txn.commit()
        # b1 never applied the commit; its branch is in doubt.
        assert bank.gateways["b1"].prepared_branches() == [txn.global_id]
        actions = bank.transactions.recover_in_doubt()
        assert actions == [(txn.global_id, "b1", "commit")]
        assert total_balance(bank) == 8000.0
        # b1's credit is now visible
        value = bank.query(
            "bank", "SELECT balance FROM accounts WHERE acct = 4"
        ).scalar()
        assert value == 1050.0

    def test_recovery_presumes_abort_without_decision(self):
        bank = build_bank_sites(2, 4)
        txn = bank.begin_transaction("G_LOST")
        txn.execute("b0", "UPDATE account SET balance = 0 WHERE acct = 0")
        txn.execute("b1", "UPDATE account SET balance = 0 WHERE acct = 4")
        # Coordinator crashed mid-prepare: branches prepared, no decision.
        for site in ("b0", "b1"):
            bank.gateways[site].prepare("G_LOST")
        actions = bank.transactions.recover_in_doubt()
        assert sorted(a[2] for a in actions) == ["abort", "abort"]
        assert total_balance(bank) == 8000.0

    def test_recovery_idempotent(self):
        bank = build_bank_sites(2, 4)
        assert bank.transactions.recover_in_doubt() == []


class TestFederatedDML:
    @pytest.fixture
    def system(self):
        system = build_university_system(
            students_per_campus=15, courses_per_campus=4, staff_count=5, seed=2
        )
        system.federation("university").define_relation(
            "tc_students",
            "SELECT sid, name, gpa, major FROM twin_cities.student",
        )
        return system

    def test_update_routes_to_source(self, system):
        count = system.update(
            "university", "UPDATE tc_students SET gpa = 4.0 WHERE sid = 1"
        )
        assert count == 1
        local = system.component("twin_cities").execute(
            "SELECT gpa FROM tc_student WHERE sid = 1"
        )
        assert float(local.scalar()) == 4.0

    def test_insert_and_delete(self, system):
        assert (
            system.update(
                "university",
                "INSERT INTO tc_students (sid, name, gpa, major) "
                "VALUES (999, 'NEW KID', 3.0, 'CS')",
            )
            == 1
        )
        visible = system.query(
            "university", "SELECT name FROM student WHERE sid = 999"
        )
        assert visible.rows == [("NEW KID",)]
        assert (
            system.update(
                "university", "DELETE FROM tc_students WHERE sid = 999"
            )
            == 1
        )

    def test_update_under_global_txn_rolls_back(self, system):
        txn = system.begin_transaction()
        system.transactional_update(
            txn, "university", "UPDATE tc_students SET gpa = 0.0"
        )
        txn.abort()
        untouched = system.query(
            "university",
            "SELECT COUNT(*) FROM student WHERE campus = 'twin_cities' "
            "AND gpa = 0.0",
        ).scalar()
        assert untouched == 0

    def test_view_predicate_bounds_updates(self, system):
        system.federation("university").define_relation(
            "cs_students",
            "SELECT sid, name, gpa FROM twin_cities.student WHERE major = 'CS'",
        )
        count = system.update(
            "university", "UPDATE cs_students SET gpa = 1.0"
        )
        non_cs_hit = system.component("twin_cities").execute(
            "SELECT COUNT(*) FROM tc_student WHERE major <> 'CS' AND gpa = 1.0"
        ).scalar()
        assert non_cs_hit == 0
        cs_total = system.component("twin_cities").execute(
            "SELECT COUNT(*) FROM tc_student WHERE major = 'CS'"
        ).scalar()
        assert count == cs_total

    def test_non_updatable_relations_rejected(self, system):
        with pytest.raises(FederationError):
            system.update("university", "UPDATE student SET gpa = 0")
        with pytest.raises(FederationError):
            system.update("university", "UPDATE staff_directory SET salary = 0")

    def test_resolve_updatable_analysis(self):
        ok = view_relation("v", "SELECT a AS x, b FROM s.e WHERE a > 1")
        source = resolve_updatable(ok)
        assert source.site == "s" and source.export == "e"
        assert source.column_map == {"x": "a", "b": "b"}
        assert source.predicate is not None

        for bad_sql in (
            "SELECT a FROM s.e UNION ALL SELECT a FROM s.f",
            "SELECT COUNT(*) AS n FROM s.e",
            "SELECT a + 1 AS x FROM s.e",
            "SELECT l.a FROM s.e l JOIN s.f r ON l.a = r.a",
            "SELECT a FROM s.e GROUP BY a",
            "SELECT a FROM s.e LIMIT 3",
        ):
            with pytest.raises(FederationError):
                resolve_updatable(view_relation("v", bad_sql))

    def test_repl_routes_dml(self, system):
        from repro.tools import QueryInterface

        ui = QueryInterface(system, federation="university")
        out = ui.run_line("UPDATE tc_students SET gpa = 3.9 WHERE sid = 2")
        assert "1 row(s) affected" in out
        ui.run_line("BEGIN")
        out = ui.run_line("UPDATE tc_students SET gpa = 3.8 WHERE sid = 2")
        assert "1 row(s) affected" in out
        ui.run_line("ROLLBACK")
        value = system.query(
            "university",
            "SELECT gpa FROM student WHERE sid = 2 AND campus = 'twin_cities'",
        ).scalar()
        assert float(value) == 3.9


class TestGlobalDeadlockMonitor:
    def test_monitor_breaks_cycle(self):
        import threading
        import time

        from repro.errors import TransactionAborted

        bank = build_bank_sites(2, 2, query_timeout=5.0)
        monitor = GlobalDeadlockMonitor(bank.gateways, interval_s=0.05)

        t1 = bank.begin_transaction("G_M1")
        t2 = bank.begin_transaction("G_M2")
        t1.execute("b0", "UPDATE account SET balance = balance + 0 WHERE acct = 0")
        t2.execute("b1", "UPDATE account SET balance = balance + 0 WHERE acct = 2")
        outcomes = {}

        def cross(txn, site, label):
            try:
                txn.execute(
                    site, "UPDATE account SET balance = balance + 0",
                    timeout=5.0,
                )
                txn.commit()
                outcomes[label] = "committed"
            except TransactionAborted as error:
                outcomes[label] = error.reason

        threads = [
            threading.Thread(target=cross, args=(t1, "b1", "a")),
            threading.Thread(target=cross, args=(t2, "b0", "b")),
        ]
        monitor.start()
        started = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        elapsed = time.monotonic() - started
        monitor.stop()
        for txn in (t1, t2):
            try:
                txn.abort()
            except Exception:
                pass
        # The monitor must have broken the deadlock well before the 5s
        # timeout backstop, with exactly one victim.
        assert elapsed < 3.0
        assert sorted(outcomes.values()) == ["committed", "deadlock"]
        assert monitor.victims_killed >= 1
        assert total_balance(bank) == 4000.0

    def test_wfg_policy_in_contention_driver(self):
        bank = build_bank_sites(2, 4)
        result = run_contention(
            bank, 2, 4,
            workers=3,
            transactions_per_worker=5,
            timeout_s=0.2,
            think_time_s=0.005,
            policy="wfg",
            seed=17,
        )
        assert result.attempted == 15
        # Under WFG, timeouts are (nearly) absent: deadlocks die precisely.
        assert result.timeout_aborts <= 2
        assert total_balance(bank) == pytest.approx(8000.0)

    def test_unknown_policy_rejected(self):
        bank = build_bank_sites(2, 2)
        with pytest.raises(ValueError):
            run_contention(bank, 2, 2, policy="coin-flip")

    def test_check_once_without_deadlock(self):
        bank = build_bank_sites(2, 2)
        monitor = GlobalDeadlockMonitor(bank.gateways)
        assert monitor.check_once() == []
        assert monitor.victims_killed == 0
