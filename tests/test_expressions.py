"""Expression evaluator tests: operators, 3VL, functions, LIKE, CASE."""

import datetime

import pytest

from repro.engine.expressions import (
    DEFAULT_NOW,
    EvalEnv,
    ExpressionEvaluator,
    OutputColumn,
    Scope,
)
from repro.errors import CatalogError, ExecutionError, SQLTypeError
from repro.sql import parse_expression


def evaluate(text, row=(), columns=(), env=None, outer=()):
    scope = Scope([OutputColumn(name, "t") for name in columns])
    evaluator = ExpressionEvaluator(scope, env or EvalEnv())
    return evaluator.eval(parse_expression(text), tuple(row), outer)


class TestArithmetic:
    def test_basics(self):
        assert evaluate("1 + 2 * 3") == 7
        assert evaluate("(1 + 2) * 3") == 9
        assert evaluate("7 / 2") == 3.5
        assert evaluate("8 / 2") == 4
        assert evaluate("7 % 3") == 1
        assert evaluate("-5 + 2") == -3

    def test_division_by_zero(self):
        with pytest.raises(ExecutionError):
            evaluate("1 / 0")
        with pytest.raises(ExecutionError):
            evaluate("1 % 0")

    def test_null_propagation(self):
        assert evaluate("NULL + 1") is None
        assert evaluate("1 * NULL") is None
        assert evaluate("-x", (None,), ("x",)) is None

    def test_type_error_on_string_arithmetic(self):
        with pytest.raises(SQLTypeError):
            evaluate("'a' + 1")

    def test_date_arithmetic(self):
        assert evaluate(
            "d + 1", (datetime.date(2020, 1, 1),), ("d",)
        ) == datetime.date(2020, 1, 2)
        assert (
            evaluate(
                "d - e",
                (datetime.date(2020, 1, 10), datetime.date(2020, 1, 1)),
                ("d", "e"),
            )
            == 9
        )


class TestComparisons:
    def test_numeric(self):
        assert evaluate("1 < 2") is True
        assert evaluate("2 <= 2") is True
        assert evaluate("3 <> 3") is False
        assert evaluate("1.5 = 1.5") is True

    def test_mixed_int_float(self):
        assert evaluate("1 = 1.0") is True

    def test_strings(self):
        assert evaluate("'abc' < 'abd'") is True

    def test_null_comparisons_are_null(self):
        assert evaluate("NULL = NULL") is None
        assert evaluate("1 < NULL") is None

    def test_boolean_logic(self):
        assert evaluate("TRUE AND FALSE") is False
        assert evaluate("TRUE OR NULL") is True
        assert evaluate("FALSE AND NULL") is False
        assert evaluate("NULL OR FALSE") is None
        assert evaluate("NOT NULL") is None

    def test_short_circuit(self):
        # The right side would divide by zero; AND must not evaluate it.
        assert evaluate("FALSE AND 1 / 0 = 1") is False
        assert evaluate("TRUE OR 1 / 0 = 1") is True


class TestPredicates:
    def test_between(self):
        assert evaluate("5 BETWEEN 1 AND 10") is True
        assert evaluate("0 BETWEEN 1 AND 10") is False
        assert evaluate("5 NOT BETWEEN 1 AND 10") is False
        assert evaluate("NULL BETWEEN 1 AND 2") is None

    def test_in_list(self):
        assert evaluate("2 IN (1, 2, 3)") is True
        assert evaluate("9 IN (1, 2, 3)") is False
        assert evaluate("9 NOT IN (1, 2, 3)") is True

    def test_in_list_null_semantics(self):
        assert evaluate("9 IN (1, NULL)") is None
        assert evaluate("1 IN (1, NULL)") is True
        assert evaluate("NULL IN (1, 2)") is None
        assert evaluate("9 NOT IN (1, NULL)") is None

    def test_is_null(self):
        assert evaluate("NULL IS NULL") is True
        assert evaluate("1 IS NULL") is False
        assert evaluate("1 IS NOT NULL") is True

    def test_like(self):
        assert evaluate("'hello' LIKE 'h%'") is True
        assert evaluate("'hello' LIKE 'h_llo'") is True
        assert evaluate("'hello' LIKE 'H%'") is False  # case-sensitive
        assert evaluate("'hello' NOT LIKE 'x%'") is True
        assert evaluate("'50%' LIKE '50%'") is True

    def test_like_special_chars_escaped(self):
        assert evaluate("'a.c' LIKE 'a.c'") is True
        assert evaluate("'abc' LIKE 'a.c'") is False  # dot is literal

    def test_like_null(self):
        assert evaluate("NULL LIKE 'x'") is None


class TestCase:
    def test_searched(self):
        text = "CASE WHEN x > 0 THEN 'pos' WHEN x < 0 THEN 'neg' ELSE 'zero' END"
        assert evaluate(text, (5,), ("x",)) == "pos"
        assert evaluate(text, (-5,), ("x",)) == "neg"
        assert evaluate(text, (0,), ("x",)) == "zero"

    def test_simple(self):
        text = "CASE x WHEN 1 THEN 'one' WHEN 2 THEN 'two' END"
        assert evaluate(text, (2,), ("x",)) == "two"
        assert evaluate(text, (3,), ("x",)) is None

    def test_null_operand_never_matches(self):
        text = "CASE x WHEN NULL THEN 'null!' ELSE 'other' END"
        assert evaluate(text, (None,), ("x",)) == "other"


class TestColumnsAndScopes:
    def test_qualified_and_unqualified(self):
        assert evaluate("t.a + a", (21,), ("a",)) == 42

    def test_unknown_column(self):
        with pytest.raises(CatalogError):
            evaluate("zzz")

    def test_ambiguous_column(self):
        scope = Scope([OutputColumn("a", "t1"), OutputColumn("a", "t2")])
        evaluator = ExpressionEvaluator(scope, EvalEnv())
        with pytest.raises(CatalogError):
            evaluator.eval(parse_expression("a"), (1, 2))
        # Qualified access works.
        assert evaluator.eval(parse_expression("t2.a"), (1, 2)) == 2

    def test_outer_scope_resolution(self):
        outer_scope = Scope([OutputColumn("o", "outer_t")])
        inner_scope = Scope([OutputColumn("i", "inner_t")], outer_scope)
        evaluator = ExpressionEvaluator(inner_scope, EvalEnv())
        value = evaluator.eval(
            parse_expression("i + outer_t.o"), (10,), ((32,),)
        )
        assert value == 42


class TestFunctions:
    def test_string_functions(self):
        assert evaluate("UPPER('ab')") == "AB"
        assert evaluate("LOWER('AB')") == "ab"
        assert evaluate("LENGTH('abc')") == 3
        assert evaluate("SUBSTR('hello', 2, 3)") == "ell"
        assert evaluate("SUBSTR('hello', 2)") == "ello"
        assert evaluate("TRIM('  x ')") == "x"
        assert evaluate("CONCAT('a', 'b', 'c')") == "abc"

    def test_numeric_functions(self):
        assert evaluate("ABS(-3)") == 3
        assert evaluate("ROUND(2.567, 2)") == 2.57
        assert evaluate("ROUND(2.5)") == 2
        assert evaluate("FLOOR(2.7)") == 2
        assert evaluate("CEIL(2.1)") == 3
        assert evaluate("MOD(7, 3)") == 1
        assert evaluate("GREATEST(1, 5, 3)") == 5
        assert evaluate("LEAST(1, 5, 3)") == 1

    def test_null_handling_in_functions(self):
        assert evaluate("UPPER(NULL)") is None
        assert evaluate("COALESCE(NULL, NULL, 3)") == 3
        assert evaluate("NVL(NULL, 'd')") == "d"
        assert evaluate("NULLIF(1, 1)") is None
        assert evaluate("NULLIF(1, 2)") == 1
        assert evaluate("GREATEST(1, NULL)") is None

    def test_clock_functions_deterministic(self):
        assert evaluate("NOW()") == DEFAULT_NOW
        assert evaluate("CURRENT_DATE()") == DEFAULT_NOW.date()
        assert evaluate("SYSDATE()") == DEFAULT_NOW.date()

    def test_custom_function(self):
        env = EvalEnv(functions={"DOUBLE_IT": lambda v: None if v is None else v * 2})
        assert evaluate("DOUBLE_IT(21)", env=env) == 42

    def test_unknown_function(self):
        with pytest.raises(ExecutionError):
            evaluate("NO_SUCH_FN(1)")

    def test_aggregate_outside_group_context(self):
        with pytest.raises(ExecutionError):
            evaluate("SUM(1)")

    def test_cast(self):
        assert evaluate("CAST('42' AS INTEGER)") == 42
        assert evaluate("CAST(1 AS VARCHAR)") == "1"
        assert evaluate("CAST('2020-01-02' AS DATE)") == datetime.date(2020, 1, 2)

    def test_concat_operator_coerces(self):
        assert evaluate("'n=' || 5") == "n=5"
