"""Local engine DML/DDL tests."""

import pytest

from repro.errors import CatalogError, ExecutionError, IntegrityError


class TestInsert:
    def test_insert_returns_count(self, engine):
        count = engine.execute("INSERT INTO dept VALUES (50, 'HR', 'REMOTE')")
        assert count == 1

    def test_multi_row_insert(self, engine):
        count = engine.execute(
            "INSERT INTO dept VALUES (50, 'HR', 'X'), (60, 'IT', 'Y')"
        )
        assert count == 2

    def test_insert_with_column_list_and_defaults(self, engine):
        engine.execute(
            "CREATE TABLE conf (k VARCHAR(10) PRIMARY KEY, v INTEGER DEFAULT 7)"
        )
        engine.execute("INSERT INTO conf (k) VALUES ('a')")
        assert engine.execute("SELECT v FROM conf").scalar() == 7

    def test_insert_select(self, engine):
        engine.execute(
            "CREATE TABLE rich (empno INTEGER, ename VARCHAR(20))"
        )
        count = engine.execute(
            "INSERT INTO rich SELECT empno, ename FROM emp WHERE sal >= 3000"
        )
        assert count == 3
        assert len(engine.execute("SELECT * FROM rich")) == 3

    def test_insert_expression_values(self, engine):
        engine.execute("INSERT INTO dept VALUES (8 * 10, UPPER('ops'), NULL)")
        result = engine.execute("SELECT dname FROM dept WHERE deptno = 80")
        assert result.rows == [("OPS",)]

    def test_insert_pk_violation(self, engine):
        with pytest.raises(IntegrityError):
            engine.execute("INSERT INTO dept VALUES (10, 'DUP', 'X')")

    def test_insert_arity_mismatch(self, engine):
        with pytest.raises(ExecutionError):
            engine.execute("INSERT INTO dept (deptno) VALUES (1, 2)")


class TestUpdate:
    def test_update_count_and_effect(self, engine):
        count = engine.execute(
            "UPDATE emp SET sal = sal * 2 WHERE deptno = 10"
        )
        assert count == 3
        total = engine.execute(
            "SELECT SUM(sal) FROM emp WHERE deptno = 10"
        ).scalar()
        assert total == pytest.approx((5000 + 2450 + 1300) * 2)

    def test_update_all_rows(self, engine):
        assert engine.execute("UPDATE emp SET comm = 0") == 14

    def test_update_uses_old_values(self, engine):
        engine.execute(
            "UPDATE emp SET sal = comm, comm = sal WHERE ename = 'ALLEN'"
        )
        result = engine.execute(
            "SELECT sal, comm FROM emp WHERE ename = 'ALLEN'"
        )
        assert result.rows == [(300.0, 1600.0)]

    def test_update_with_subquery_predicate(self, engine):
        count = engine.execute(
            "UPDATE emp SET sal = 0 WHERE deptno IN "
            "(SELECT deptno FROM dept WHERE loc = 'DALLAS')"
        )
        assert count == 5

    def test_update_pk_violation_raises(self, engine):
        with pytest.raises(IntegrityError):
            engine.execute("UPDATE dept SET deptno = 10 WHERE deptno = 20")

    def test_update_not_null_violation(self, engine):
        with pytest.raises(IntegrityError):
            engine.execute("UPDATE emp SET empno = NULL WHERE ename = 'KING'")


class TestDelete:
    def test_delete_with_predicate(self, engine):
        count = engine.execute("DELETE FROM emp WHERE deptno = 30")
        assert count == 6
        assert engine.execute("SELECT COUNT(*) FROM emp").scalar() == 8

    def test_delete_all(self, engine):
        assert engine.execute("DELETE FROM emp") == 14
        assert engine.execute("SELECT COUNT(*) FROM emp").scalar() == 0

    def test_delete_nothing(self, engine):
        assert engine.execute("DELETE FROM emp WHERE sal > 99999") == 0


class TestDDL:
    def test_create_and_drop(self, engine):
        engine.execute("CREATE TABLE tmp (a INTEGER)")
        engine.execute("INSERT INTO tmp VALUES (1)")
        engine.execute("DROP TABLE tmp")
        with pytest.raises(CatalogError):
            engine.execute("SELECT * FROM tmp")

    def test_create_duplicate(self, engine):
        with pytest.raises(CatalogError):
            engine.execute("CREATE TABLE emp (a INTEGER)")
        engine.execute("CREATE TABLE IF NOT EXISTS emp (a INTEGER)")  # no-op

    def test_drop_missing(self, engine):
        with pytest.raises(CatalogError):
            engine.execute("DROP TABLE nope")
        engine.execute("DROP TABLE IF EXISTS nope")

    def test_unique_column_constraint(self, engine):
        engine.execute(
            "CREATE TABLE u (id INTEGER PRIMARY KEY, email VARCHAR(40) UNIQUE)"
        )
        engine.execute("INSERT INTO u VALUES (1, 'a@x.com')")
        with pytest.raises(IntegrityError):
            engine.execute("INSERT INTO u VALUES (2, 'a@x.com')")

    def test_create_index_enforces_unique(self, engine):
        engine.execute("CREATE UNIQUE INDEX ename_u ON emp (ename)")
        with pytest.raises(IntegrityError):
            engine.execute(
                "INSERT INTO emp VALUES (9999, 'KING', 'X', NULL, 1, NULL, 10)"
            )

    def test_create_index_on_missing_column(self, engine):
        with pytest.raises(CatalogError):
            engine.execute("CREATE INDEX bad ON emp (nope)")

    def test_composite_primary_key(self, engine):
        engine.execute(
            "CREATE TABLE pairs (a INTEGER, b INTEGER, PRIMARY KEY (a, b))"
        )
        engine.execute("INSERT INTO pairs VALUES (1, 1), (1, 2)")
        with pytest.raises(IntegrityError):
            engine.execute("INSERT INTO pairs VALUES (1, 2)")

    def test_txn_control_rejected_at_engine_level(self, engine):
        with pytest.raises(ExecutionError):
            engine.execute("BEGIN")
