"""Self-healing federation tests: per-site circuit breakers, degraded
partial reads, and breaker-aware retry in the query/transaction paths."""

import pytest

from repro.errors import CircuitOpenError, MessageDropped, NetworkError
from repro.health import BreakerState, HealthTracker, health_of
from repro.net import FaultInjector, Network
from repro.obs import Observability
from repro.workloads import build_bank_sites, total_balance


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tracker(clock):
    return HealthTracker(threshold=3, cooldown_s=0.25, clock=clock)


class TestHealthTracker:
    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            HealthTracker(threshold=0)

    def test_closed_until_consecutive_threshold(self, tracker):
        tracker.record_failure("s", reason="drop")
        tracker.record_failure("s", reason="drop")
        assert tracker.state("s") is BreakerState.CLOSED
        assert tracker.allow("s")
        tracker.record_failure("s", reason="drop")
        assert tracker.state("s") is BreakerState.OPEN
        assert not tracker.allow("s")
        assert tracker.is_blocked("s")

    def test_success_resets_the_failure_streak(self, tracker):
        tracker.record_failure("s")
        tracker.record_failure("s")
        tracker.record_success("s")
        tracker.record_failure("s")
        tracker.record_failure("s")
        assert tracker.state("s") is BreakerState.CLOSED

    def test_sites_are_independent(self, tracker):
        for _ in range(3):
            tracker.record_failure("dead")
        assert tracker.state("dead") is BreakerState.OPEN
        assert tracker.state("fine") is BreakerState.CLOSED
        assert tracker.allow("fine")

    def test_cooldown_admits_a_half_open_probe(self, tracker, clock):
        for _ in range(3):
            tracker.record_failure("s")
        assert not tracker.allow("s")
        clock.now += 0.25
        assert tracker.allow("s")  # this caller is the probe
        assert tracker.state("s") is BreakerState.HALF_OPEN
        assert tracker.snapshot()["s"]["probes"] == 1

    def test_probe_success_closes_the_breaker(self, tracker, clock):
        for _ in range(3):
            tracker.record_failure("s")
        clock.now += 0.25
        assert tracker.allow("s")
        tracker.record_success("s")
        assert tracker.state("s") is BreakerState.CLOSED
        assert not tracker.is_blocked("s")

    def test_probe_failure_reopens_and_restarts_cooldown(self, tracker, clock):
        for _ in range(3):
            tracker.record_failure("s")
        clock.now += 0.25
        assert tracker.allow("s")
        tracker.record_failure("s", reason="still dead")
        assert tracker.state("s") is BreakerState.OPEN
        assert not tracker.allow("s")  # fresh cooldown from the re-trip
        clock.now += 0.25
        assert tracker.allow("s")

    def test_is_blocked_never_starts_a_probe(self, tracker, clock):
        for _ in range(3):
            tracker.record_failure("s")
        clock.now += 0.25
        assert not tracker.is_blocked("s")  # cooldown elapsed
        assert tracker.state("s") is BreakerState.OPEN  # ...but no probe yet

    def test_snapshot_includes_all_closed_defaults(self, tracker):
        tracker.record_failure("s")
        snap = tracker.snapshot(sites=["s", "quiet"])
        assert snap["s"]["failures"] == 1
        assert snap["quiet"]["state"] == "closed"
        assert snap["quiet"]["failures"] == 0

    def test_transitions_emit_events_and_metrics(self, clock):
        obs = Observability()
        tracker = HealthTracker(threshold=2, cooldown_s=0.1, clock=clock, obs=obs)
        tracker.record_failure("s", reason="drop")
        tracker.record_failure("s", reason="drop")
        clock.now += 0.1
        tracker.allow("s")
        tracker.record_success("s")
        assert [e.fields["site"] for e in obs.events.of_type("health.trip")] == ["s"]
        assert len(obs.events.of_type("health.probe")) == 1
        assert len(obs.events.of_type("health.close")) == 1
        assert obs.metrics.counter("health.trip", site="s") == 1
        (trip,) = obs.events.of_type("health.trip")
        assert trip.fields["reason"] == "drop"


class TestNetworkIntegration:
    def _network(self):
        net = Network(faults=FaultInjector(seed=1))
        for site in ("federation", "a", "b"):
            net.add_site(site)
        net.health = HealthTracker(clock=lambda: net.now_s)
        return net

    def test_outcomes_blame_the_site_not_the_hub(self):
        net = self._network()
        net.faults.crash_site("a")
        for _ in range(3):
            with pytest.raises(MessageDropped):
                net.send("federation", "a", 10, "query")
        # hub→site and site→hub losses both blame the non-hub endpoint
        with pytest.raises(MessageDropped):
            net.send("a", "federation", 10, "result")
        assert net.health.state("a") is BreakerState.OPEN
        assert "federation" not in net.health.snapshot()
        assert net.health.state("b") is BreakerState.CLOSED

    def test_delivery_records_success_and_closes(self):
        net = self._network()
        net.faults.crash_site("a")
        for _ in range(3):
            with pytest.raises(MessageDropped):
                net.send("federation", "a", 10, "query")
        net.faults.restart_site("a")
        net.advance(net.health.cooldown_s)
        assert net.health.allow("a")  # half-open probe
        net.send("federation", "a", 10, "query")
        assert net.health.state("a") is BreakerState.CLOSED

    def test_simulated_clock_advances_on_traffic_and_drops(self):
        net = self._network()
        assert net.now_s == 0.0
        cost = net.send("federation", "a", 100, "query")
        assert net.now_s == pytest.approx(cost)
        net.faults.crash_site("a")
        with pytest.raises(MessageDropped):
            net.send("federation", "a", 100, "query")
        # a drop still burns the link latency before the loss is noticed
        assert net.now_s > cost

    def test_advance_rejects_negative(self):
        net = self._network()
        with pytest.raises(NetworkError):
            net.advance(-1.0)

    def test_health_of_helper(self):
        net = self._network()
        assert health_of(net) is net.health
        assert health_of(object()) is None


@pytest.fixture
def bank():
    system = build_bank_sites(3, 4, query_timeout=1.0)
    system.inject_faults(seed=5)
    return system


def _trip(system, site):
    """Fail enough sends to trip ``site``'s breaker."""
    system.network.faults.crash_site(site)
    while system.health.state(site) is not BreakerState.OPEN:
        with pytest.raises(MessageDropped):
            system.network.send("federation", site, 10, "query")


class TestGatewayCircuit:
    def test_open_breaker_fails_fast_with_circuit_error(self, bank):
        _trip(bank, "b1")
        with pytest.raises(CircuitOpenError) as exc:
            bank.query("bank", "SELECT SUM(balance) FROM accounts")
        assert exc.value.site == "b1"
        assert bank.obs.metrics.counter("gateway.circuit_open", site="b1") >= 1

    def test_circuit_error_is_a_network_error(self):
        # so existing NetworkError handling (transaction aborts, partial
        # reads) treats a refused site exactly like an unreachable one
        assert issubclass(CircuitOpenError, NetworkError)

    def test_open_breaker_does_not_gate_recovery(self, bank):
        """recover_in_doubt must keep probing an OPEN site: its delivery
        attempts are the probes that eventually re-close the breaker."""
        txn = bank.begin_transaction()
        txn.execute("b0", "UPDATE account SET balance = balance - 10 WHERE acct = 0")
        txn.execute("b1", "UPDATE account SET balance = balance + 10 WHERE acct = 4")
        faults = bank.network.faults
        faults.drop_next(10**6, destination="b1", purpose="commit")
        txn.commit()
        assert bank.transactions.decisions_parked == 1
        _trip(bank, "b1")
        faults.clear()
        actions = bank.transactions.recover_in_doubt()
        assert (txn.global_id, "b1", "commit") in actions
        # the successful delivery doubled as the probe
        assert bank.health.state("b1") is BreakerState.CLOSED


class TestDegradedReads:
    def test_partial_query_skips_dead_site(self, bank):
        bank.network.faults.crash_site("b1")
        result = bank.query(
            "bank", "SELECT SUM(balance) FROM accounts", allow_partial=True
        )
        assert result.degraded
        assert result.missing_sites == ["b1"]
        assert float(result.scalar()) == 8000.0  # b0 + b2 only
        assert bank.obs.metrics.counter("query.degraded") == 1
        (event,) = bank.events.of_type("query.degraded")
        assert event.fields["sites"] == ["b1"]

    def test_full_result_is_not_degraded(self, bank):
        result = bank.query(
            "bank", "SELECT SUM(balance) FROM accounts", allow_partial=True
        )
        assert not result.degraded
        assert result.missing_sites == []
        assert float(result.scalar()) == 12000.0

    def test_strict_query_still_raises(self, bank):
        bank.network.faults.crash_site("b1")
        with pytest.raises(MessageDropped):
            bank.query("bank", "SELECT SUM(balance) FROM accounts")

    def test_open_breaker_is_skipped_without_burning_messages(self, bank):
        _trip(bank, "b1")
        before = bank.network.dropped_messages
        result = bank.query(
            "bank", "SELECT SUM(balance) FROM accounts", allow_partial=True
        )
        assert result.degraded and result.missing_sites == ["b1"]
        # known-open breaker → no send was even attempted at b1
        assert bank.network.dropped_messages == before

    def test_explain_analyze_renders_degraded_fetches(self, bank):
        bank.network.faults.crash_site("b1")
        result = bank.query(
            "bank", "SELECT SUM(balance) FROM accounts", allow_partial=True
        )
        text = result.explain_analyze()
        assert "DEGRADED: partial result, missing sites: b1" in text
        assert "skipped: site 'b1' unreachable" in text

    def test_federation_stats_surface_health(self, bank):
        _trip(bank, "b1")
        stats = bank.federation_stats()
        assert stats["health"]["b1"]["state"] == "open"
        assert stats["health"]["b1"]["trips"] == 1
        assert stats["health"]["b0"]["state"] == "closed"

    def test_self_healing_end_to_end(self, bank):
        """The acceptance demo: crash → trip → degraded reads → restart →
        half-open probe → breaker closes → full reads again."""
        faults = bank.network.faults
        faults.crash_site("b1")
        with pytest.raises(MessageDropped):
            bank.query("bank", "SELECT SUM(balance) FROM accounts")
        assert bank.health.state("b1") is BreakerState.OPEN
        degraded = bank.query(
            "bank", "SELECT SUM(balance) FROM accounts", allow_partial=True
        )
        assert degraded.degraded and degraded.missing_sites == ["b1"]

        faults.restart_site("b1")
        bank.network.advance(bank.health.cooldown_s)
        healed = bank.query(
            "bank", "SELECT SUM(balance) FROM accounts", allow_partial=True
        )
        assert not healed.degraded
        assert float(healed.scalar()) == 12000.0
        assert bank.health.state("b1") is BreakerState.CLOSED
        types = [e.type for e in bank.events.snapshot()]
        assert "health.trip" in types
        assert "health.probe" in types
        assert "health.close" in types

    def test_transactional_partial_read(self, bank):
        bank.network.faults.crash_site("b2")
        txn = bank.begin_transaction()
        result = bank.transactional_query(
            txn,
            "bank",
            "SELECT SUM(balance) FROM accounts",
            allow_partial=True,
        )
        assert result.degraded and result.missing_sites == ["b2"]
        assert float(result.scalar()) == 8000.0
        txn.commit()


class TestTransientRetry:
    def test_single_drop_is_absorbed_by_fetch_retry(self, bank):
        bank.network.faults.drop_next(1, purpose="query")
        result = bank.query("bank", "SELECT SUM(balance) FROM accounts")
        assert float(result.scalar()) == 12000.0
        assert not result.degraded
        assert bank.obs.metrics.counter_total("query.fetch_retries") == 1

    def test_retry_backoff_advances_the_simulated_clock(self, bank):
        bank.network.faults.drop_next(1, purpose="query")
        before = bank.network.now_s
        bank.query("bank", "SELECT SUM(balance) FROM accounts")
        executor = bank.processor("bank").executor
        assert bank.network.now_s - before >= executor.fetch_retry_backoff_s

    def test_branch_open_retry_in_global_txn(self, bank):
        bank.network.faults.drop_next(1, purpose="begin")
        txn = bank.begin_transaction()
        result = bank.transactional_query(
            txn, "bank", "SELECT SUM(balance) FROM accounts"
        )
        assert float(result.scalar()) == 12000.0
        assert bank.obs.metrics.counter("txn.branch_retries") >= 1
        txn.commit()
