"""Self-healing federation tests: per-site circuit breakers, degraded
partial reads, and breaker-aware retry in the query/transaction paths."""

import pytest

from repro.errors import CircuitOpenError, MessageDropped, NetworkError
from repro.health import BreakerState, HealthTracker, health_of
from repro.net import FaultInjector, Network
from repro.obs import Observability
from repro.workloads import build_bank_sites, total_balance


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tracker(clock):
    return HealthTracker(threshold=3, cooldown_s=0.25, clock=clock)


class TestHealthTracker:
    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            HealthTracker(threshold=0)

    def test_closed_until_consecutive_threshold(self, tracker):
        tracker.record_failure("s", reason="drop")
        tracker.record_failure("s", reason="drop")
        assert tracker.state("s") is BreakerState.CLOSED
        assert tracker.allow("s")
        tracker.record_failure("s", reason="drop")
        assert tracker.state("s") is BreakerState.OPEN
        assert not tracker.allow("s")
        assert tracker.is_blocked("s")

    def test_success_resets_the_failure_streak(self, tracker):
        tracker.record_failure("s")
        tracker.record_failure("s")
        tracker.record_success("s")
        tracker.record_failure("s")
        tracker.record_failure("s")
        assert tracker.state("s") is BreakerState.CLOSED

    def test_sites_are_independent(self, tracker):
        for _ in range(3):
            tracker.record_failure("dead")
        assert tracker.state("dead") is BreakerState.OPEN
        assert tracker.state("fine") is BreakerState.CLOSED
        assert tracker.allow("fine")

    def test_cooldown_admits_a_half_open_probe(self, tracker, clock):
        for _ in range(3):
            tracker.record_failure("s")
        assert not tracker.allow("s")
        clock.now += 0.25
        assert tracker.allow("s")  # this caller is the probe
        assert tracker.state("s") is BreakerState.HALF_OPEN
        assert tracker.snapshot()["s"]["probes"] == 1

    def test_probe_success_closes_the_breaker(self, tracker, clock):
        for _ in range(3):
            tracker.record_failure("s")
        clock.now += 0.25
        assert tracker.allow("s")
        tracker.record_success("s")
        assert tracker.state("s") is BreakerState.CLOSED
        assert not tracker.is_blocked("s")

    def test_probe_failure_reopens_and_restarts_cooldown(self, tracker, clock):
        for _ in range(3):
            tracker.record_failure("s")
        clock.now += 0.25
        assert tracker.allow("s")
        tracker.record_failure("s", reason="still dead")
        assert tracker.state("s") is BreakerState.OPEN
        assert not tracker.allow("s")  # fresh cooldown from the re-trip
        clock.now += 0.25
        assert tracker.allow("s")

    def test_is_blocked_never_starts_a_probe(self, tracker, clock):
        for _ in range(3):
            tracker.record_failure("s")
        clock.now += 0.25
        assert not tracker.is_blocked("s")  # cooldown elapsed
        assert tracker.state("s") is BreakerState.OPEN  # ...but no probe yet

    def test_snapshot_includes_all_closed_defaults(self, tracker):
        tracker.record_failure("s")
        snap = tracker.snapshot(sites=["s", "quiet"])
        assert snap["s"]["failures"] == 1
        assert snap["quiet"]["state"] == "closed"
        assert snap["quiet"]["failures"] == 0

    def test_transitions_emit_events_and_metrics(self, clock):
        obs = Observability()
        tracker = HealthTracker(threshold=2, cooldown_s=0.1, clock=clock, obs=obs)
        tracker.record_failure("s", reason="drop")
        tracker.record_failure("s", reason="drop")
        clock.now += 0.1
        tracker.allow("s")
        tracker.record_success("s")
        assert [e.fields["site"] for e in obs.events.of_type("health.trip")] == ["s"]
        assert len(obs.events.of_type("health.probe")) == 1
        assert len(obs.events.of_type("health.close")) == 1
        assert obs.metrics.counter("health.trip", site="s") == 1
        (trip,) = obs.events.of_type("health.trip")
        assert trip.fields["reason"] == "drop"


class TestSingleFlightProbe:
    def test_burst_after_cooldown_admits_exactly_one_probe(self, tracker, clock):
        for _ in range(3):
            tracker.record_failure("s")
        clock.now += 0.25
        # a concurrent burst arrives right as the cooldown elapses
        admitted = [tracker.allow("s") for _ in range(8)]
        assert admitted == [True] + [False] * 7
        assert tracker.snapshot()["s"]["probes"] == 1
        assert tracker.snapshot()["s"]["probe_inflight"] is True

    def test_threaded_burst_admits_exactly_one_probe(self, tracker, clock):
        import threading

        for _ in range(3):
            tracker.record_failure("s")
        clock.now += 0.25
        results = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            results.append(tracker.allow("s"))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results.count(True) == 1

    def test_blocked_while_probe_pending_reopens_after_outcome(
        self, tracker, clock
    ):
        for _ in range(3):
            tracker.record_failure("s")
        clock.now += 0.25
        assert tracker.allow("s")
        assert tracker.is_blocked("s")  # everyone else waits on the probe
        tracker.record_success("s")
        assert not tracker.is_blocked("s")
        assert tracker.allow("s")  # breaker closed again

    def test_vanished_probe_is_replaced_after_a_cooldown(self, tracker, clock):
        # A probe whose caller resolves without ever sending would pin the
        # breaker HALF_OPEN forever; after a cooldown the slot goes stale
        # and the next caller takes over as the replacement probe.
        for _ in range(3):
            tracker.record_failure("s")
        clock.now += 0.25
        assert tracker.allow("s")
        assert not tracker.allow("s")
        clock.now += 0.25
        assert not tracker.is_blocked("s")  # the slot went stale
        assert tracker.allow("s")  # replacement probe admitted
        assert tracker.snapshot()["s"]["probes"] == 2


class TestNetworkIntegration:
    def _network(self):
        net = Network(faults=FaultInjector(seed=1))
        for site in ("federation", "a", "b"):
            net.add_site(site)
        net.health = HealthTracker(clock=lambda: net.now_s)
        return net

    def test_outcomes_blame_the_site_not_the_hub(self):
        net = self._network()
        net.faults.crash_site("a")
        for _ in range(3):
            with pytest.raises(MessageDropped):
                net.send("federation", "a", 10, "query")
        # hub→site and site→hub losses both blame the non-hub endpoint
        with pytest.raises(MessageDropped):
            net.send("a", "federation", 10, "result")
        assert net.health.state("a") is BreakerState.OPEN
        assert "federation" not in net.health.snapshot()
        assert net.health.state("b") is BreakerState.CLOSED

    def test_delivery_records_success_and_closes(self):
        net = self._network()
        net.faults.crash_site("a")
        for _ in range(3):
            with pytest.raises(MessageDropped):
                net.send("federation", "a", 10, "query")
        net.faults.restart_site("a")
        net.advance(net.health.cooldown_s)
        assert net.health.allow("a")  # half-open probe
        net.send("federation", "a", 10, "query")
        assert net.health.state("a") is BreakerState.CLOSED

    def test_simulated_clock_advances_on_traffic_and_drops(self):
        net = self._network()
        assert net.now_s == 0.0
        cost = net.send("federation", "a", 100, "query")
        assert net.now_s == pytest.approx(cost)
        net.faults.crash_site("a")
        with pytest.raises(MessageDropped):
            net.send("federation", "a", 100, "query")
        # a drop still burns the link latency before the loss is noticed
        assert net.now_s > cost

    def test_advance_rejects_negative(self):
        net = self._network()
        with pytest.raises(NetworkError):
            net.advance(-1.0)

    def test_health_of_helper(self):
        net = self._network()
        assert health_of(net) is net.health
        assert health_of(object()) is None


@pytest.fixture
def bank():
    system = build_bank_sites(3, 4, query_timeout=1.0)
    system.inject_faults(seed=5)
    return system


def _trip(system, site):
    """Fail enough sends to trip ``site``'s breaker."""
    system.network.faults.crash_site(site)
    while system.health.state(site) is not BreakerState.OPEN:
        with pytest.raises(MessageDropped):
            system.network.send("federation", site, 10, "query")


class TestGatewayCircuit:
    def test_open_breaker_fails_fast_with_circuit_error(self, bank):
        _trip(bank, "b1")
        with pytest.raises(CircuitOpenError) as exc:
            bank.query("bank", "SELECT SUM(balance) FROM accounts")
        assert exc.value.site == "b1"
        assert bank.obs.metrics.counter("gateway.circuit_open", site="b1") >= 1

    def test_circuit_error_is_a_network_error(self):
        # so existing NetworkError handling (transaction aborts, partial
        # reads) treats a refused site exactly like an unreachable one
        assert issubclass(CircuitOpenError, NetworkError)

    def test_open_breaker_does_not_gate_recovery(self, bank):
        """recover_in_doubt must keep probing an OPEN site: its delivery
        attempts are the probes that eventually re-close the breaker."""
        txn = bank.begin_transaction()
        txn.execute("b0", "UPDATE account SET balance = balance - 10 WHERE acct = 0")
        txn.execute("b1", "UPDATE account SET balance = balance + 10 WHERE acct = 4")
        faults = bank.network.faults
        faults.drop_next(10**6, destination="b1", purpose="commit")
        txn.commit()
        assert bank.transactions.decisions_parked == 1
        _trip(bank, "b1")
        faults.clear()
        actions = bank.transactions.recover_in_doubt()
        assert (txn.global_id, "b1", "commit") in actions
        # the successful delivery doubled as the probe
        assert bank.health.state("b1") is BreakerState.CLOSED


class TestDegradedReads:
    def test_partial_query_skips_dead_site(self, bank):
        bank.network.faults.crash_site("b1")
        result = bank.query(
            "bank", "SELECT SUM(balance) FROM accounts", allow_partial=True
        )
        assert result.degraded
        assert result.missing_sites == ["b1"]
        assert float(result.scalar()) == 8000.0  # b0 + b2 only
        assert bank.obs.metrics.counter("query.degraded") == 1
        (event,) = bank.events.of_type("query.degraded")
        assert event.fields["sites"] == ["b1"]

    def test_full_result_is_not_degraded(self, bank):
        result = bank.query(
            "bank", "SELECT SUM(balance) FROM accounts", allow_partial=True
        )
        assert not result.degraded
        assert result.missing_sites == []
        assert float(result.scalar()) == 12000.0

    def test_strict_query_still_raises(self, bank):
        bank.network.faults.crash_site("b1")
        with pytest.raises(MessageDropped):
            bank.query("bank", "SELECT SUM(balance) FROM accounts")

    def test_open_breaker_is_skipped_without_burning_messages(self, bank):
        _trip(bank, "b1")
        before = bank.network.dropped_messages
        result = bank.query(
            "bank", "SELECT SUM(balance) FROM accounts", allow_partial=True
        )
        assert result.degraded and result.missing_sites == ["b1"]
        # known-open breaker → no send was even attempted at b1
        assert bank.network.dropped_messages == before

    def test_explain_analyze_renders_degraded_fetches(self, bank):
        bank.network.faults.crash_site("b1")
        result = bank.query(
            "bank", "SELECT SUM(balance) FROM accounts", allow_partial=True
        )
        text = result.explain_analyze()
        assert "DEGRADED: partial result, missing sites: b1" in text
        assert "skipped: site 'b1' unreachable" in text

    def test_federation_stats_surface_health(self, bank):
        _trip(bank, "b1")
        stats = bank.federation_stats()
        assert stats["health"]["b1"]["state"] == "open"
        assert stats["health"]["b1"]["trips"] == 1
        assert stats["health"]["b0"]["state"] == "closed"

    def test_self_healing_end_to_end(self, bank):
        """The acceptance demo: crash → trip → degraded reads → restart →
        half-open probe → breaker closes → full reads again."""
        faults = bank.network.faults
        faults.crash_site("b1")
        with pytest.raises(MessageDropped):
            bank.query("bank", "SELECT SUM(balance) FROM accounts")
        assert bank.health.state("b1") is BreakerState.OPEN
        degraded = bank.query(
            "bank", "SELECT SUM(balance) FROM accounts", allow_partial=True
        )
        assert degraded.degraded and degraded.missing_sites == ["b1"]

        faults.restart_site("b1")
        bank.network.advance(bank.health.cooldown_s)
        healed = bank.query(
            "bank", "SELECT SUM(balance) FROM accounts", allow_partial=True
        )
        assert not healed.degraded
        assert float(healed.scalar()) == 12000.0
        assert bank.health.state("b1") is BreakerState.CLOSED
        types = [e.type for e in bank.events.snapshot()]
        assert "health.trip" in types
        assert "health.probe" in types
        assert "health.close" in types

    def test_transactional_partial_read(self, bank):
        bank.network.faults.crash_site("b2")
        txn = bank.begin_transaction()
        result = bank.transactional_query(
            txn,
            "bank",
            "SELECT SUM(balance) FROM accounts",
            allow_partial=True,
        )
        assert result.degraded and result.missing_sites == ["b2"]
        assert float(result.scalar()) == 8000.0
        txn.commit()


class TestTransientRetry:
    def test_single_drop_is_absorbed_by_fetch_retry(self, bank):
        bank.network.faults.drop_next(1, purpose="query")
        result = bank.query("bank", "SELECT SUM(balance) FROM accounts")
        assert float(result.scalar()) == 12000.0
        assert not result.degraded
        assert bank.obs.metrics.counter_total("query.fetch_retries") == 1

    def test_retry_backoff_advances_the_simulated_clock(self, bank):
        bank.network.faults.drop_next(1, purpose="query")
        before = bank.network.now_s
        bank.query("bank", "SELECT SUM(balance) FROM accounts")
        executor = bank.processor("bank").executor
        assert bank.network.now_s - before >= executor.fetch_retry_backoff_s

    def test_branch_open_retry_in_global_txn(self, bank):
        bank.network.faults.drop_next(1, purpose="begin")
        txn = bank.begin_transaction()
        result = bank.transactional_query(
            txn, "bank", "SELECT SUM(balance) FROM accounts"
        )
        assert float(result.scalar()) == 12000.0
        assert bank.obs.metrics.counter("txn.branch_retries") >= 1
        txn.commit()


class TestRetryJitter:
    def test_scale_is_seed_deterministic_and_bounded(self):
        from repro.net import RetryJitter

        draws_a = [RetryJitter(9).scale(0.01) for _ in [0]]
        jitter = RetryJitter(9)
        scaled = [jitter.scale(0.01) for _ in range(50)]
        assert scaled[0] == draws_a[0]
        assert all(0.005 <= value < 0.015 for value in scaled)
        again = RetryJitter(9)
        assert [again.scale(0.01) for _ in range(50)] == scaled

    def _retry_elapsed(self, **kwargs):
        system = build_bank_sites(3, 4, query_timeout=1.0, **kwargs)
        system.inject_faults(seed=7)
        system.network.faults.drop_next(1, purpose="query")
        before = system.network.now_s
        system.query("bank", "SELECT SUM(balance) FROM accounts")
        elapsed = system.network.now_s - before
        system.close()
        return elapsed

    def test_off_by_default_and_bit_identical(self):
        assert self._retry_elapsed() == self._retry_elapsed(
            retry_jitter=False
        )

    def test_jitter_perturbs_the_fetch_retry_backoff(self):
        plain = self._retry_elapsed()
        jittered = self._retry_elapsed(retry_jitter=True, jitter_seed=3)
        assert jittered != plain
        # the jittered wait stays within the [0.5, 1.5) scaling envelope
        base = self._retry_elapsed() - 0.01  # transfer time sans backoff
        wait = jittered - base
        assert 0.005 <= wait < 0.015

    def test_jitter_is_seed_deterministic(self):
        first = self._retry_elapsed(retry_jitter=True, jitter_seed=3)
        second = self._retry_elapsed(retry_jitter=True, jitter_seed=3)
        assert first == second

    def test_branch_retry_backoff_is_jittered_too(self):
        def branch_elapsed(**kwargs):
            system = build_bank_sites(3, 4, query_timeout=1.0, **kwargs)
            system.inject_faults(seed=7)
            system.network.faults.drop_next(1, purpose="begin")
            before = system.network.now_s
            txn = system.begin_transaction()
            system.transactional_query(
                txn, "bank", "SELECT SUM(balance) FROM accounts"
            )
            txn.commit()
            elapsed = system.network.now_s - before
            system.close()
            return elapsed

        assert branch_elapsed(retry_jitter=True, jitter_seed=5) != (
            branch_elapsed()
        )
        assert branch_elapsed(retry_jitter=True, jitter_seed=5) == (
            branch_elapsed(retry_jitter=True, jitter_seed=5)
        )
