"""Telemetry pipeline tests: event log, exporters, bundle, introspection, CLI.

Covers the export layer end to end: the structured :class:`EventLog`, the
Chrome-trace and Prometheus exporters with their schema validators, the
debug-bundle dump/reload round trip, the live introspection APIs
(``lock_table`` / ``wait_for_graph`` / ``transaction_states`` /
``federation_stats``), the ``repro.obs.report`` CLI, and the acceptance
scenario: a faulty E11-style run whose bundle carries every 2PC state
transition and deadlock victim decision and reloads byte-for-byte.
"""

import json
import threading
import time

import pytest

from repro.errors import MyriadError, TwoPhaseCommitError
from repro.obs import Event, EventLog, Observability, load_events_jsonl
from repro.obs.export import (
    BUNDLE_FORMAT,
    dump_debug_bundle,
    load_debug_bundle,
    metrics_to_json,
    metrics_to_prometheus,
    spans_to_chrome_trace,
    validate_chrome_trace,
    validate_prometheus_text,
)
from repro.obs.introspect import (
    federation_stats,
    introspection_snapshot,
    lock_table,
    render_dashboard,
    transaction_states,
    wait_for_graph,
)
from repro.obs.report import build_demo_system, main, selftest
from repro.txn import GlobalDeadlockMonitor
from repro.workloads import build_bank_sites, build_two_site_join

JOIN_SQL = (
    "SELECT lhs.k, rhs.val FROM lhs, rhs "
    "WHERE lhs.k = rhs.k AND lhs.flt < 0.5"
)


# ---------------------------------------------------------------------------
# Event log
# ---------------------------------------------------------------------------


class TestEventLog:
    def test_emit_assigns_monotone_sequence(self):
        log = EventLog()
        first = log.emit("a", x=1)
        second = log.emit("b")
        assert (first.seq, second.seq) == (0, 1)
        assert first.type == "a"
        assert first.fields == {"x": 1}
        assert first.wall_ts <= second.wall_ts

    def test_fields_are_coerced_json_safe(self):
        log = EventLog()

        class Opaque:
            def __str__(self):
                return "G7"

        event = log.emit(
            "t", txn=Opaque(), sites=("b0", "b1"), nested={"k": Opaque()}
        )
        # Everything must survive json.dumps without default= help.
        parsed = json.loads(event.to_json())
        assert parsed["txn"] == "G7"
        assert parsed["sites"] == ["b0", "b1"]
        assert parsed["nested"] == {"k": "G7"}

    def test_bounded_buffer_counts_evictions(self):
        log = EventLog(max_events=3)
        for index in range(5):
            log.emit("e", i=index)
        assert len(log) == 3
        assert log.dropped == 2
        # Oldest evicted: the survivors are the 3 most recent.
        assert [event.fields["i"] for event in log.snapshot()] == [2, 3, 4]
        # Sequence numbers keep counting across evictions.
        assert [event.seq for event in log.snapshot()] == [2, 3, 4]
        assert "5 recorded" not in log.render()
        assert "2 dropped" in log.render()

    def test_of_type_filters(self):
        log = EventLog()
        log.emit("2pc", state="BEGIN")
        log.emit("fault.drop")
        log.emit("2pc", state="COMMITTED")
        assert [e.fields["state"] for e in log.of_type("2pc")] == [
            "BEGIN",
            "COMMITTED",
        ]

    def test_disabled_log_is_noop(self):
        log = EventLog(enabled=False)
        assert log.emit("e") is None
        assert len(log) == 0
        assert log.to_jsonl() == ""
        assert "(no events recorded)" in log.render()

    def test_jsonl_round_trip(self):
        log = EventLog()
        log.emit("2pc", sim_s=0.25, txn="G1", state="BEGIN")
        log.emit("fault.drop", source="a", destination="b")
        reloaded = load_events_jsonl(log.to_jsonl())
        assert [e.to_json() for e in reloaded] == [
            e.to_json() for e in log.snapshot()
        ]
        assert reloaded[0].sim_s == 0.25
        assert reloaded[0].fields == {"txn": "G1", "state": "BEGIN"}
        assert reloaded[1].sim_s is None

    def test_clear_resets_everything_but_not_seq(self):
        log = EventLog(max_events=1)
        log.emit("a")
        log.emit("b")
        assert log.dropped == 1
        log.clear()
        assert len(log) == 0
        assert log.dropped == 0

    def test_concurrent_emits_keep_unique_sequences(self):
        log = EventLog()

        def worker():
            for _ in range(50):
                log.emit("tick")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        sequences = [event.seq for event in log.snapshot()]
        assert len(sequences) == 200
        assert len(set(sequences)) == 200


# ---------------------------------------------------------------------------
# Chrome trace export
# ---------------------------------------------------------------------------


class TestChromeTraceExport:
    def _system_with_query(self):
        system = build_two_site_join(30, 30)
        system.query("synth", JOIN_SQL)
        return system

    def test_wall_trace_schema_and_tracks(self):
        system = self._system_with_query()
        trace = spans_to_chrome_trace(system.tracer, clock="wall")
        assert validate_chrome_trace(trace) == []
        names = {
            event["args"]["name"]
            for event in trace["traceEvents"]
            if event["ph"] == "M"
        }
        # One named track per site plus the coordinator track.
        assert names == {"coordinator", "s1", "s2"}
        span_names = {
            event["name"]
            for event in trace["traceEvents"]
            if event["ph"] == "X"
        }
        assert "query.execute" in span_names
        assert "execute.fetch" in span_names

    def test_fetch_spans_land_on_their_site_track(self):
        system = self._system_with_query()
        trace = spans_to_chrome_trace(system.tracer, clock="wall")
        tid_by_name = {
            event["args"]["name"]: event["tid"]
            for event in trace["traceEvents"]
            if event["ph"] == "M"
        }
        for event in trace["traceEvents"]:
            if event.get("name") == "execute.fetch":
                assert event["tid"] == tid_by_name[event["args"]["site"]]

    def test_sim_trace_monotone_and_scaled(self):
        system = self._system_with_query()
        trace = spans_to_chrome_trace(system.tracer, clock="sim")
        assert validate_chrome_trace(trace) == []
        assert trace["otherData"]["clock"] == "sim"
        # Children never extend past their root on the simulated clock.
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        root_end = max(e["ts"] + e["dur"] for e in spans)
        for event in spans:
            assert event["ts"] + event["dur"] <= root_end + 1e-6

    def test_unknown_clock_rejected(self):
        with pytest.raises(ValueError, match="unknown trace clock"):
            spans_to_chrome_trace(Observability().tracer, clock="lamport")

    def test_validator_flags_broken_traces(self):
        assert validate_chrome_trace({"nope": 1}) != []
        missing_key = {"traceEvents": [{"ph": "X", "pid": 1, "tid": 0}]}
        assert any(
            "missing required key 'name'" in p
            for p in validate_chrome_trace(missing_key)
        )
        backwards = {
            "traceEvents": [
                {"name": "a", "ph": "X", "pid": 1, "tid": 0, "ts": 5.0, "dur": 1.0},
                {"name": "b", "ph": "X", "pid": 1, "tid": 0, "ts": 2.0, "dur": 1.0},
            ]
        }
        assert any("goes backwards" in p for p in validate_chrome_trace(backwards))
        negative = {
            "traceEvents": [
                {"name": "a", "ph": "X", "pid": 1, "tid": 0, "ts": -1, "dur": 0}
            ]
        }
        assert any("non-negative" in p for p in validate_chrome_trace(negative))

    def test_span_error_recorded_in_args(self):
        obs = Observability()
        with pytest.raises(RuntimeError):
            with obs.span("boom"):
                raise RuntimeError("fetch died")
        trace = spans_to_chrome_trace(obs.tracer)
        (event,) = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert "fetch died" in event["args"]["error"]


# ---------------------------------------------------------------------------
# Prometheus export
# ---------------------------------------------------------------------------


class TestPrometheusExport:
    def test_counters_gauges_histograms_exposed(self):
        obs = Observability()
        obs.metrics.inc("net.messages", 3, purpose="query")
        obs.metrics.set_gauge("txn.active", 2)
        for value in (0.1, 0.2, 0.3):
            obs.metrics.observe("query.sim_elapsed_s", value)
        text = metrics_to_prometheus(obs.metrics)
        assert validate_prometheus_text(text) == []
        assert "# TYPE myriad_net_messages_total counter" in text
        assert 'myriad_net_messages_total{purpose="query"} 3.0' in text
        assert "# TYPE myriad_txn_active gauge" in text
        assert "myriad_txn_active 2.0" in text
        assert "# TYPE myriad_query_sim_elapsed_s summary" in text
        assert 'myriad_query_sim_elapsed_s{quantile="0.5"} 0.2' in text
        assert "myriad_query_sim_elapsed_s_count 3.0" in text
        # _sum = mean * count
        assert "myriad_query_sim_elapsed_s_sum" in text

    def test_label_values_escaped(self):
        obs = Observability()
        obs.metrics.inc("odd", site='say "hi"\nthere')
        text = metrics_to_prometheus(obs.metrics)
        assert validate_prometheus_text(text) == []
        assert '\\"hi\\"' in text
        assert "\\n" in text

    def test_empty_registry_still_valid(self):
        text = metrics_to_prometheus(Observability().metrics)
        assert "# no metrics recorded" in text
        assert validate_prometheus_text(text) == []

    def test_validator_flags_malformed_lines(self):
        assert validate_prometheus_text("this is not a sample\n") != []
        assert validate_prometheus_text("name{unclosed=\"x\" 1\n") != []
        assert validate_prometheus_text("ok_metric 1.5\n") == []

    def test_json_snapshot_is_stable(self):
        obs = Observability()
        obs.metrics.inc("b")
        obs.metrics.inc("a")
        first = metrics_to_json(obs.metrics)
        second = metrics_to_json(obs.metrics)
        assert first == second
        parsed = json.loads(first)
        assert list(parsed["counters"]) == ["a", "b"]


# ---------------------------------------------------------------------------
# Debug bundle
# ---------------------------------------------------------------------------


class TestDebugBundle:
    def test_dump_and_reload_round_trip(self, tmp_path):
        system = build_two_site_join(20, 20)
        system.obs.slow_query_threshold_s = 0.0
        system.query("synth", JOIN_SQL)
        path = system.dump_debug_bundle(tmp_path / "bundle")
        bundle = load_debug_bundle(path)

        assert bundle.manifest["format"] == BUNDLE_FORMAT
        assert bundle.report == system.observability_report()
        assert bundle.metrics == json.loads(
            json.dumps(system.metrics.snapshot())
        )
        assert [e.to_json() for e in bundle.events] == [
            e.to_json() for e in system.events.snapshot()
        ]
        assert bundle.validate() == []
        assert bundle.config["sites"] == {
            "s1": "PostgresDBMS",
            "s2": "OracleDBMS",
        }
        assert bundle.config["default_optimizer"] == "cost"
        assert "federation_stats" in bundle.introspection
        for clock in ("wall", "sim"):
            assert validate_chrome_trace(bundle.trace(clock)) == []

    def test_manifest_counts_match_contents(self, tmp_path):
        system = build_two_site_join(10, 10)
        system.obs.slow_query_threshold_s = 0.0
        system.query("synth", JOIN_SQL)
        bundle = load_debug_bundle(system.dump_debug_bundle(tmp_path / "b"))
        assert bundle.manifest["events"] == len(bundle.events)
        assert bundle.manifest["span_roots"] == len(system.tracer.roots)
        assert bundle.manifest["spans_dropped"] == system.tracer.dropped
        for name in bundle.manifest["files"]:
            assert (bundle.path / name).exists()

    def test_load_rejects_non_bundle_directory(self, tmp_path):
        with pytest.raises(MyriadError, match="no MANIFEST.json"):
            load_debug_bundle(tmp_path)

    def test_load_rejects_unknown_format(self, tmp_path):
        (tmp_path / "MANIFEST.json").write_text(
            json.dumps({"format": "myriad-debug-bundle/99", "files": []})
        )
        with pytest.raises(MyriadError, match="unsupported bundle format"):
            load_debug_bundle(tmp_path)

    def test_load_rejects_missing_files(self, tmp_path):
        (tmp_path / "MANIFEST.json").write_text(
            json.dumps({"format": BUNDLE_FORMAT, "files": ["report.txt"]})
        )
        with pytest.raises(MyriadError, match="missing files"):
            load_debug_bundle(tmp_path)

    def test_dump_into_existing_directory_overwrites(self, tmp_path):
        system = build_two_site_join(10, 10)
        system.query("synth", JOIN_SQL)
        target = tmp_path / "bundle"
        system.dump_debug_bundle(target)
        system.query("synth", JOIN_SQL)
        system.dump_debug_bundle(target)
        bundle = load_debug_bundle(target)
        assert bundle.report == system.observability_report()


# ---------------------------------------------------------------------------
# Live introspection
# ---------------------------------------------------------------------------


class TestIntrospection:
    def test_lock_table_shows_global_holders(self):
        bank = build_bank_sites(2, 2)
        txn = bank.begin_transaction("G_LOCK")
        txn.execute("b0", "UPDATE account SET balance = 1 WHERE acct = 0")
        table = bank.lock_table()
        assert sorted(table) == ["b0", "b1"]
        (entry,) = table["b0"]
        assert entry["resource"] == "account"
        assert entry["holders"] == {"G_LOCK": "X"}
        assert entry["waiters"] == []
        txn.abort()
        assert bank.lock_table()["b0"] == []

    def test_wait_for_graph_reports_cycle_victim_and_dot(self):
        bank = build_bank_sites(2, 2, query_timeout=5.0)
        t1 = bank.begin_transaction("G_ONE")
        t2 = bank.begin_transaction("G_TWO")
        t1.execute("b0", "UPDATE account SET balance = 1 WHERE acct = 0")
        t2.execute("b1", "UPDATE account SET balance = 1 WHERE acct = 2")

        def cross(txn, site, acct):
            try:
                txn.execute(
                    site,
                    f"UPDATE account SET balance = 2 WHERE acct = {acct}",
                    timeout=1.5,
                )
            except Exception:
                pass

        threads = [
            threading.Thread(target=cross, args=(t1, "b1", 3)),
            threading.Thread(target=cross, args=(t2, "b0", 1)),
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.3)
        graph = bank.wait_for_graph()
        for thread in threads:
            thread.join()
        for txn in (t1, t2):
            try:
                txn.abort()
            except Exception:
                pass

        assert sorted(map(tuple, graph["edges"])) == [
            ("G_ONE", "G_TWO"),
            ("G_TWO", "G_ONE"),
        ]
        assert graph["cycles"] != []
        assert graph["victims"] == ["G_TWO"]
        dot = graph["dot"]
        assert dot.startswith("digraph wait_for {")
        assert '"G_ONE" -> "G_TWO";' in dot
        # The victim is double-circled, deadlocked nodes filled.
        assert 'fillcolor="#f4cccc"' in dot
        assert "peripheries=2" in dot

    def test_transaction_states_flags_in_doubt_branch(self):
        bank = build_bank_sites(2, 2)
        faults = bank.inject_faults(seed=5)
        faults.drop_next(count=10**6, destination="b1", purpose="commit")
        txn = bank.begin_transaction()
        txn.execute("b0", "UPDATE account SET balance = 1 WHERE acct = 0")
        txn.execute("b1", "UPDATE account SET balance = 1 WHERE acct = 2")
        txn.commit()

        (row,) = [
            r
            for r in bank.transaction_states()
            if r["branches"].get("b1") == "prepared"
        ]
        # The coordinator decided commit, b1 never heard: in doubt, divergent.
        assert row["coordinator"].startswith("decided:")
        assert row["pending_delivery"] == {"b1": "commit"}
        assert row["divergent"] is True

        faults.clear()
        bank.transactions.recover_in_doubt()
        assert all(not r["divergent"] for r in bank.transaction_states())

    def test_federation_stats_shape(self):
        system = build_two_site_join(10, 10)
        system.query("synth", JOIN_SQL)
        stats = system.federation_stats()
        assert set(stats["sites"]) == {"s1", "s2"}
        assert stats["sites"]["s1"]["dialect"] == "PostgresDBMS"
        assert stats["sites"]["s1"]["exports"] == ["left_rel"]
        assert stats["sites"]["s1"]["queries_executed"] >= 1
        assert stats["federations"]["synth"]["relations"]
        assert stats["network"]["messages"] > 0
        assert stats["transactions"]["active"] == 0

    def test_snapshot_is_json_serialisable(self):
        bank = build_bank_sites(2, 2)
        txn = bank.begin_transaction()
        txn.execute("b0", "UPDATE account SET balance = 1 WHERE acct = 0")
        snapshot = introspection_snapshot(bank)
        text = json.dumps(snapshot, sort_keys=True)
        assert json.loads(text) == json.loads(text)
        txn.abort()

    def test_dashboard_renders_all_sections(self):
        bank = build_bank_sites(2, 2)
        txn = bank.begin_transaction("G_DASH")
        txn.execute("b0", "UPDATE account SET balance = 1 WHERE acct = 0")
        dashboard = render_dashboard(introspection_snapshot(bank))
        assert "== federation ==" in dashboard
        assert "== lock table ==" in dashboard
        assert "b0.account: held[G_DASH:X]" in dashboard
        assert "== wait-for graph ==" in dashboard
        assert "(no waits)" in dashboard
        assert "== global transactions ==" in dashboard
        assert "G_DASH: coordinator=active" in dashboard
        txn.abort()

    def test_deadlock_monitor_emits_sweep_event(self):
        bank = build_bank_sites(2, 2)
        monitor = GlobalDeadlockMonitor(bank.gateways)
        monitor.detector.global_edges = lambda: [("G1", "G2"), ("G2", "G1")]
        monitor.check_once()
        (event,) = bank.events.of_type("deadlock.sweep")
        assert event.fields["cycles"] == [["G1", "G2"]]
        assert event.fields["victims"] == ["G2"]


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestReportCLI:
    def test_demo_dump_then_bundle_reproduces_report(self, tmp_path, capsys):
        assert main(["--demo", "--dump", str(tmp_path / "b")]) == 0
        live = capsys.readouterr().out
        assert "wrote debug bundle" in live
        assert "== federation ==" in live

        bundle = load_debug_bundle(tmp_path / "b")
        assert main(["--bundle", str(tmp_path / "b")]) == 0
        reloaded = capsys.readouterr().out
        # The recorded report comes back byte-for-byte, leading the output.
        assert reloaded.startswith(bundle.report)
        assert "== bundle ==" in reloaded
        assert BUNDLE_FORMAT in reloaded

    def test_selftest_passes(self):
        assert selftest() == 0

    def test_demo_event_log_covers_every_source(self):
        system = build_demo_system()
        types = {event.type for event in system.events.snapshot()}
        assert "2pc" in types
        assert "query.slow" in types
        assert "wal.park" in types
        assert "wal.drain" in types
        assert "fault.drop" in types

    def test_bundle_and_demo_flags_are_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            main(["--demo", "--bundle", "x"])
        capsys.readouterr()


# ---------------------------------------------------------------------------
# Acceptance: an E11-style faulty run's bundle tells the whole story
# ---------------------------------------------------------------------------


class TestFaultyRunBundleAcceptance:
    def _faulty_run(self):
        """E11-style workload: commits, aborts, vote-NO, lost decision,
        a genuine cross-site deadlock resolved by the monitor, recovery."""
        bank = build_bank_sites(3, 4, query_timeout=5.0)
        bank.obs.slow_query_threshold_s = 0.0

        bank.query("bank", "SELECT COUNT(*) FROM accounts")

        # Committed transfer (full 2PC) and a client abort.
        txn = bank.begin_transaction()
        txn.execute("b0", "UPDATE account SET balance = balance - 1 WHERE acct = 0")
        txn.execute("b1", "UPDATE account SET balance = balance + 1 WHERE acct = 4")
        txn.commit()
        txn = bank.begin_transaction()
        txn.execute("b0", "UPDATE account SET balance = balance - 1 WHERE acct = 1")
        txn.abort()

        # Phase-1 failure: a participant votes NO.
        bank.gateways["b2"].fail_next_prepares = 1
        txn = bank.begin_transaction()
        txn.execute("b0", "UPDATE account SET balance = balance - 1 WHERE acct = 2")
        txn.execute("b2", "UPDATE account SET balance = balance + 1 WHERE acct = 8")
        with pytest.raises(TwoPhaseCommitError):
            txn.commit()

        # A genuine global deadlock, killed by the wait-for-graph monitor.
        monitor = GlobalDeadlockMonitor(bank.gateways)
        t1 = bank.begin_transaction("G_DL_A")
        t2 = bank.begin_transaction("G_DL_B")
        t1.execute("b0", "UPDATE account SET balance = 1 WHERE acct = 3")
        t2.execute("b1", "UPDATE account SET balance = 1 WHERE acct = 7")

        def cross(txn, site, acct):
            try:
                txn.execute(
                    site,
                    f"UPDATE account SET balance = 2 WHERE acct = {acct}",
                    timeout=3.0,
                )
            except Exception:
                pass

        threads = [
            threading.Thread(target=cross, args=(t1, "b1", 5)),
            threading.Thread(target=cross, args=(t2, "b0", 1)),
        ]
        for thread in threads:
            thread.start()
        deadline = time.time() + 3.0
        victims = []
        while not victims and time.time() < deadline:
            time.sleep(0.05)
            victims = monitor.check_once()
        for thread in threads:
            thread.join()
        for txn in (t1, t2):
            try:
                txn.abort()
            except Exception:
                pass
        assert victims, "monitor never caught the deadlock"

        # A commit decision the network loses: parked in doubt, recovered.
        faults = bank.inject_faults(seed=9)
        faults.drop_next(count=10**6, destination="b1", purpose="commit")
        txn = bank.begin_transaction()
        txn.execute("b0", "UPDATE account SET balance = balance - 2 WHERE acct = 0")
        txn.execute("b1", "UPDATE account SET balance = balance + 2 WHERE acct = 4")
        txn.commit()
        faults.clear()
        bank.transactions.recover_in_doubt()
        return bank, victims

    def test_bundle_captures_the_whole_run(self, tmp_path, capsys):
        bank, victims = self._faulty_run()
        path = bank.dump_debug_bundle(tmp_path / "postmortem")
        bundle = load_debug_bundle(path)

        # 1. The Perfetto trace is schema-valid (both clocks).
        assert bundle.validate() == []
        wall = bundle.trace("wall")
        tracks = {
            e["args"]["name"] for e in wall["traceEvents"] if e["ph"] == "M"
        }
        assert {"coordinator", "b0", "b1", "b2"} <= tracks

        # 2. The event log holds every 2PC state transition of the run...
        states = {
            e.fields["state"] for e in bundle.events if e.type == "2pc"
        }
        assert states >= {
            "BEGIN",
            "PREPARING",
            "PREPARED",
            "COMMITTED",
            "ABORTED",
            "IN-DOUBT",
            "RECOVERED",
        }
        # ...including per-participant transitions from the gateways.
        roles = {e.fields["role"] for e in bundle.events if e.type == "2pc"}
        assert roles == {"coordinator", "participant"}

        # 3. ...and the deadlock victim decision, cycles included.
        sweeps = [e for e in bundle.events if e.type == "deadlock.sweep"]
        assert sweeps
        logged_victims = {v for e in sweeps for v in e.fields["victims"]}
        assert {str(v) for v in victims} <= logged_victims
        assert any(e.fields["cycles"] for e in sweeps)

        # 4. The fault injector's interference is on the record too.
        assert any(e.type == "fault.drop" for e in bundle.events)
        assert any(e.type == "wal.park" for e in bundle.events)
        assert any(e.type == "wal.drain" for e in bundle.events)

        # 5. Reloading through the CLI reproduces the report byte-for-byte.
        assert bundle.report == bank.observability_report()
        assert main(["--bundle", str(path)]) == 0
        assert capsys.readouterr().out.startswith(bundle.report)
