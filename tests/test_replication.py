"""Replication layer tests: replica groups, elections, log replication,
deterministic failover, follower reads, and the leader-kill chaos module."""

import pytest

from repro.chaos import (
    enumerate_replication_points,
    run_replica_crash,
)
from repro.errors import MessageDropped
from repro.replication import ReplicatedGateway
from repro.workloads import (
    build_bank_sites,
    build_two_site_join,
    total_balance,
)

ACCOUNTS = 4


def build_replicated(replicas=3, **kwargs):
    kwargs.setdefault("replication_factor", replicas)
    system = build_bank_sites(3, ACCOUNTS, query_timeout=1.0, **kwargs)
    system.inject_faults(seed=0)
    return system


def rows_at(replica):
    result = replica.gateway.dbms.execute(
        "SELECT acct, balance FROM account ORDER BY acct"
    )
    return tuple(result.rows)


def write(system, site, sql):
    """Autocommit DML straight at one logical site's gateway."""
    return system.gateways[site].execute_update(sql, None)


def transfer(system, amount=25.0):
    txn = system.begin_transaction()
    txn.execute(
        "b0",
        f"UPDATE account SET balance = balance - {amount} WHERE acct = 0",
    )
    txn.execute(
        "b1",
        "UPDATE account SET balance = balance + "
        f"{amount} WHERE acct = {ACCOUNTS}",
    )
    txn.commit()


# ---------------------------------------------------------------------------
# Construction
# ---------------------------------------------------------------------------


class TestReplicatedBuild:
    def test_each_site_becomes_a_group_of_n(self):
        system = build_replicated(3)
        assert set(system.replica_groups) == {"b0", "b1", "b2"}
        for site, group in system.replica_groups.items():
            assert len(group.replicas) == 3
            assert [r.site for r in group.replicas] == [
                f"{site}#0", f"{site}#1", f"{site}#2"
            ]
            assert group.leader.site == f"{site}#0"
            assert isinstance(system.gateways[site], ReplicatedGateway)
        system.close()

    def test_replicas_start_with_identical_seed_data(self):
        system = build_replicated(3)
        for group in system.replica_groups.values():
            contents = {rows_at(r) for r in group.replicas}
            assert len(contents) == 1
        system.close()

    def test_factor_one_builds_no_replica_machinery(self):
        system = build_bank_sites(3, ACCOUNTS, replication_factor=1)
        assert system.replica_groups == {}
        assert not isinstance(system.gateways["b0"], ReplicatedGateway)
        system.close()

    def test_factor_one_is_bit_identical_to_the_default_build(self):
        def run(**kwargs):
            system = build_two_site_join(60, 60, seed=7, **kwargs)
            result = system.query(
                "synth",
                "SELECT COUNT(*) FROM lhs, rhs WHERE lhs.k = rhs.k",
            )
            totals = (
                result.scalar(),
                system.network.total_messages,
                system.network.total_bytes,
                system.network.now_s,
            )
            system.close()
            return totals

        assert run() == run(replication_factor=1)


# ---------------------------------------------------------------------------
# Log replication
# ---------------------------------------------------------------------------


class TestLogReplication:
    def test_autocommit_write_reaches_every_replica(self):
        system = build_replicated(3)
        write(system, "b0", "UPDATE account SET balance = balance + 7 WHERE acct = 0")
        group = system.replica_groups["b0"]
        assert group.leader.commit_index == 1
        assert all(r.applied_index == 1 for r in group.replicas)
        assert len({rows_at(r) for r in group.replicas}) == 1
        assert rows_at(group.replicas[1])[0] == (0, 1007.0)
        system.close()

    def test_two_pc_commit_is_replicated_as_prepare_then_commit(self):
        system = build_replicated(3)
        transfer(system, 25.0)
        for site in ("b0", "b1"):
            group = system.replica_groups[site]
            kinds = [e.kind for e in group.leader.log]
            assert kinds == ["prepare", "commit"]
            assert group.leader.commit_index == 2
            assert all(r.applied_index == 2 for r in group.replicas)
            assert len({rows_at(r) for r in group.replicas}) == 1
            assert not group.leader.pending_prepares
        assert total_balance(system) == 3 * ACCOUNTS * 1000.0
        system.close()

    def test_aborted_branch_leaves_replicas_untouched(self):
        system = build_replicated(3)
        system.gateways["b1"].fail_next_prepares = 1
        with pytest.raises(Exception):
            transfer(system, 25.0)
        for group in system.replica_groups.values():
            assert len({rows_at(r) for r in group.replicas}) == 1
            assert rows_at(group.replicas[0])[0][1] == 1000.0
            assert not group.leader.pending_prepares
        system.close()


# ---------------------------------------------------------------------------
# Elections and failover
# ---------------------------------------------------------------------------


class TestFailover:
    def test_leader_kill_elects_and_write_succeeds(self):
        system = build_replicated(3)
        group = system.replica_groups["b0"]
        system.network.faults.crash_site("b0#0")
        write(system, "b0", "UPDATE account SET balance = balance + 3 WHERE acct = 0")
        assert group.leader.site != "b0#0"
        assert group.term == 2
        assert group.failovers == 1
        assert group.last_failover_s > 0.0
        assert group.elections[2] == group.leader.site
        # the write is applied at the surviving majority
        live = [r for r in group.replicas if r.site != "b0#0"]
        assert all(rows_at(r)[0] == (0, 1003.0) for r in live)
        system.close()

    def test_election_is_seed_deterministic(self):
        def winner(seed):
            system = build_replicated(3, replication_seed=seed)
            system.network.faults.crash_site("b0#0")
            write(system, "b0", "UPDATE account SET balance = balance + 1 WHERE acct = 0")
            group = system.replica_groups["b0"]
            out = (group.leader.site, group.term, group.last_failover_s)
            system.close()
            return out

        assert winner(4) == winner(4)

    def test_healed_ex_leader_converges_via_catch_up(self):
        system = build_replicated(3)
        group = system.replica_groups["b0"]
        faults = system.network.faults
        faults.crash_site("b0#0")
        write(system, "b0", "UPDATE account SET balance = balance + 9 WHERE acct = 0")
        faults.heal()
        group.catch_up()
        assert len({rows_at(r) for r in group.replicas}) == 1
        assert group.violations == []
        system.close()

    def test_breaker_open_leader_triggers_election(self):
        system = build_replicated(3)
        group = system.replica_groups["b0"]
        health = system.network.health
        for _ in range(health.threshold):
            health.record_failure("b0#0", reason="probe")
        assert health.is_blocked("b0#0")
        result = system.query("bank", "SELECT SUM(balance) FROM accounts")
        assert float(result.scalar()) == 3 * ACCOUNTS * 1000.0
        assert group.leader.site != "b0#0"
        system.close()

    def test_majority_dead_group_is_unavailable(self):
        system = build_replicated(3)
        faults = system.network.faults
        faults.crash_site("b0#0")
        faults.crash_site("b0#1")
        with pytest.raises(MessageDropped):
            write(system, "b0", "UPDATE account SET balance = balance + 1 WHERE acct = 0")
        assert system.replica_groups["b0"].violations == []
        system.close()

    def test_single_leader_per_term_across_repeated_failovers(self):
        system = build_replicated(3)
        group = system.replica_groups["b0"]
        faults = system.network.faults
        for _ in range(3):
            faults.crash_site(group.leader.site)
            write(system, "b0", "UPDATE account SET balance = balance + 1 WHERE acct = 0")
            faults.heal()
            group.catch_up()
        assert group.violations == []
        assert len(group.elections) == len(set(group.elections))
        assert len({rows_at(r) for r in group.replicas}) == 1
        system.close()


# ---------------------------------------------------------------------------
# Failover during 2PC
# ---------------------------------------------------------------------------


class TestFailoverDuring2PC:
    def test_leader_kill_mid_prepare_keeps_the_group_vote_consistent(self):
        system = build_replicated(3)
        group = system.replica_groups["b0"]
        faults = system.network.faults
        killed = []

        def hook(point, **context):
            if point == "mid_append:prepare" and not killed:
                killed.append(group.leader.site)
                faults.crash_site(group.leader.site)

        group.chaos_hook = hook
        try:
            transfer(system, 25.0)
        finally:
            group.chaos_hook = None
        assert killed == ["b0#0"]
        assert group.leader.site != "b0#0"
        # the adopted branch committed on the new leader's replica set
        live = [r for r in group.replicas if r.site != "b0#0"]
        assert all(rows_at(r)[0] == (0, 975.0) for r in live)
        faults.heal()
        group.catch_up()
        assert len({rows_at(r) for r in group.replicas}) == 1
        assert group.violations == []
        system.close()

    def test_decision_survives_leader_kill_before_commit_append(self):
        system = build_replicated(3)
        group = system.replica_groups["b0"]
        faults = system.network.faults

        def hook(point, **context):
            if point == "before_append:commit":
                group.chaos_hook = None
                faults.crash_site(group.leader.site)

        group.chaos_hook = hook
        transfer(system, 10.0)
        faults.heal()
        for g in system.replica_groups.values():
            g.catch_up()
        assert total_balance(system) == 3 * ACCOUNTS * 1000.0
        live_rows = {rows_at(r) for r in group.replicas}
        assert len(live_rows) == 1
        assert rows_at(group.replicas[0])[0] == (0, 990.0)
        system.close()


# ---------------------------------------------------------------------------
# Partitions
# ---------------------------------------------------------------------------


class TestPartitions:
    def test_election_under_asymmetric_partition(self):
        # Followers cannot reach the leader (acks are lost) but the
        # leader's appends still arrive: the healthy follower majority
        # elects among itself and the write lands there.
        system = build_replicated(3)
        group = system.replica_groups["b0"]
        faults = system.network.faults
        faults.partition_oneway(["b0#1", "b0#2"], ["b0#0"])
        write(system, "b0", "UPDATE account SET balance = balance + 5 WHERE acct = 0")
        assert group.leader.site in ("b0#1", "b0#2")
        assert group.violations == []
        followers = [r for r in group.replicas if r.site != "b0#0"]
        assert all(rows_at(r)[0] == (0, 1005.0) for r in followers)
        faults.heal()
        group.catch_up()
        assert len({rows_at(r) for r in group.replicas}) == 1
        system.close()

    def test_three_way_partition_heals_and_converges(self):
        system = build_replicated(3)
        group = system.replica_groups["b0"]
        faults = system.network.faults
        sites = [r.site for r in group.replicas]
        for i, a in enumerate(sites):
            for b in sites[i + 1 :]:
                faults.partition([a], [b])
        with pytest.raises(MessageDropped):
            write(system, "b0", "UPDATE account SET balance = balance + 1 WHERE acct = 0")
        faults.heal()
        group.catch_up()
        assert group.violations == []
        # Raft's unknown-outcome semantics: the failed write was already
        # in the leader's log, so the heal commits it everywhere — the
        # client saw an error, but the write is not lost.
        assert len({rows_at(r) for r in group.replicas}) == 1
        assert rows_at(group.replicas[0])[0] == (0, 1001.0)
        # the group is writable again after the heal
        write(system, "b0", "UPDATE account SET balance = balance + 2 WHERE acct = 0")
        group.catch_up()
        assert all(rows_at(r)[0] == (0, 1003.0) for r in group.replicas)
        system.close()


# ---------------------------------------------------------------------------
# Follower reads
# ---------------------------------------------------------------------------


class TestFollowerReads:
    def test_snapshot_reads_are_served_by_followers(self):
        system = build_replicated(3, follower_reads=True)
        result = system.query("bank", "SELECT SUM(balance) FROM accounts")
        assert float(result.scalar()) == 3 * ACCOUNTS * 1000.0
        served = sum(
            g.follower_reads for g in system.replica_groups.values()
        )
        assert served == 3  # one fragment per site, all follower-served
        system.close()

    def test_disabled_follower_reads_go_to_the_leader(self):
        system = build_replicated(3, follower_reads=False)
        system.query("bank", "SELECT SUM(balance) FROM accounts")
        assert all(
            g.follower_reads == 0 for g in system.replica_groups.values()
        )
        system.close()

    def test_reads_alternate_over_eligible_followers(self):
        system = build_replicated(3, follower_reads=True)
        gateway = system.gateways["b0"]
        first = gateway.router.pick_follower(0)
        second = gateway.router.pick_follower(0)
        assert {first.site, second.site} == {"b0#1", "b0#2"}
        system.close()

    def test_staleness_bound_excludes_lagging_followers(self):
        system = build_replicated(3, follower_reads=True)
        group = system.replica_groups["b0"]
        router = system.gateways["b0"].router
        # A follower crashed through a write lags by one entry.
        system.network.faults.crash_site("b0#2")
        write(system, "b0", "UPDATE account SET balance = balance + 1 WHERE acct = 0")
        system.network.faults.heal()
        laggard = group.replicas[2]
        assert laggard.lag() == 0  # its own view is consistent...
        assert group.leader.commit_index - laggard.applied_index == 1
        for _ in range(4):
            assert router.pick_follower(0).site == "b0#1"
        # a relaxed bound re-admits it; so does convergence
        assert {
            router.pick_follower(1).site for _ in range(4)
        } == {"b0#1", "b0#2"}
        group.catch_up()
        assert {
            router.pick_follower(0).site for _ in range(4)
        } == {"b0#1", "b0#2"}
        system.close()

    def test_reads_fall_back_to_the_leader_when_all_followers_lag(self):
        system = build_replicated(
            3, follower_reads=True, replication_staleness=0
        )
        group = system.replica_groups["b0"]
        router = system.gateways["b0"].router
        for replica in group.replicas:
            if replica is not group.leader:
                replica.applied_index = -1  # force both out of bound
        assert router.pick_follower(0) is None
        result = system.query("bank", "SELECT SUM(balance) FROM accounts")
        assert float(result.scalar()) == 3 * ACCOUNTS * 1000.0
        assert group.follower_reads == 0
        system.close()

    def test_staleness_gauge_tracks_follower_lag(self):
        system = build_replicated(3, follower_reads=True)
        write(system, "b0", "UPDATE account SET balance = balance + 1 WHERE acct = 0")
        stats = system.replica_groups["b0"].stats()
        assert stats["staleness"] == {"b0#1": 0, "b0#2": 0}
        system.close()


# ---------------------------------------------------------------------------
# Chaos module
# ---------------------------------------------------------------------------


class TestReplicationChaos:
    def test_enumerated_points_cover_the_replication_protocol(self):
        points = enumerate_replication_points()
        for kind in ("prepare", "commit"):
            assert f"before_append:{kind}" in points
            assert f"mid_append:{kind}" in points
            assert f"after_append:{kind}" in points
            assert f"before_commit_advance:{kind}" in points
        assert "before_decision:commit" in points
        assert points[-1] == "mid_election"

    @pytest.mark.parametrize(
        "point",
        ["mid_append:prepare", "before_decision:commit", "mid_election"],
    )
    def test_leader_kill_run_holds_the_invariants(self, point):
        run = run_replica_crash(point, seed=0)
        assert run.ok, run.violations
        if point == "mid_election":
            assert run.quorum_lost
            assert run.app_outcome == "unavailable"
        else:
            assert run.failovers >= 1
            assert run.app_outcome in ("committed", "aborted")
