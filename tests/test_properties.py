"""Property-based tests (hypothesis) on core data structures and invariants."""

import string

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import LocalEngine
from repro.engine.expressions import _like_match, compare_values
from repro.sql import ast, parse_statement, to_sql
from repro.storage import Catalog, Column, INTEGER, Table, TableSchema, VARCHAR
from repro.storage.index import OrderedIndex
from repro.storage.types import null_first_key, tv_and, tv_not, tv_or

# ---------------------------------------------------------------------------
# Three-valued logic laws
# ---------------------------------------------------------------------------

tv = st.sampled_from([True, False, None])


class TestThreeValuedLaws:
    @given(tv, tv, tv)
    def test_and_associative(self, a, b, c):
        assert tv_and(tv_and(a, b), c) == tv_and(a, tv_and(b, c))

    @given(tv, tv, tv)
    def test_or_associative(self, a, b, c):
        assert tv_or(tv_or(a, b), c) == tv_or(a, tv_or(b, c))

    @given(tv, tv)
    def test_de_morgan(self, a, b):
        assert tv_not(tv_and(a, b)) == tv_or(tv_not(a), tv_not(b))

    @given(tv)
    def test_double_negation(self, a):
        assert tv_not(tv_not(a)) == a

    @given(tv, tv, tv)
    def test_distribution(self, a, b, c):
        assert tv_and(a, tv_or(b, c)) == tv_or(tv_and(a, b), tv_and(a, c))


# ---------------------------------------------------------------------------
# LIKE matching vs. a reference implementation
# ---------------------------------------------------------------------------


def reference_like(value: str, pattern: str) -> bool:
    """Simple recursive LIKE oracle."""

    def match(v: int, p: int) -> bool:
        if p == len(pattern):
            return v == len(value)
        ch = pattern[p]
        if ch == "%":
            return any(match(rest, p + 1) for rest in range(v, len(value) + 1))
        if v == len(value):
            return False
        if ch == "_" or value[v] == ch:
            return match(v + 1, p + 1)
        return False

    return match(0, 0)


class TestLike:
    @given(
        st.text(alphabet="ab%_.c", max_size=8),
        st.text(alphabet="ab.c", max_size=8),
    )
    @settings(max_examples=200)
    def test_matches_reference(self, pattern, value):
        assert _like_match(value, pattern) == reference_like(value, pattern)


# ---------------------------------------------------------------------------
# Ordered index vs. a sorted-list oracle
# ---------------------------------------------------------------------------

ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete"]),
        st.integers(min_value=0, max_value=20),
    ),
    max_size=60,
)


class TestOrderedIndexModel:
    @given(ops, st.integers(0, 20), st.integers(0, 20))
    @settings(max_examples=150)
    def test_range_scan_matches_model(self, operations, low, high):
        index = OrderedIndex("i", "t", ["k"])
        model: dict[int, set[int]] = {}
        rid = 0
        for op, key in operations:
            if op == "insert":
                rid += 1
                index.insert((key,), rid)
                model.setdefault(key, set()).add(rid)
            else:
                existing = model.get(key)
                if existing:
                    victim = min(existing)
                    index.delete((key,), victim)
                    existing.discard(victim)
                    if not existing:
                        del model[key]
        if low > high:
            low, high = high, low
        got = {key[0]: rids for key, rids in index.range_scan((low,), (high,))}
        expected = {
            key: set(rids)
            for key, rids in model.items()
            if low <= key <= high and rids
        }
        assert got == expected


# ---------------------------------------------------------------------------
# Table + primary key model
# ---------------------------------------------------------------------------


class TestTableModel:
    @given(
        st.lists(
            st.tuples(st.integers(0, 10), st.text(string.ascii_lowercase, max_size=4)),
            max_size=40,
        )
    )
    @settings(max_examples=100)
    def test_pk_table_behaves_like_dict(self, inserts):
        table = Table(
            TableSchema(
                "t",
                [Column("k", INTEGER, nullable=False), Column("v", VARCHAR)],
                ["k"],
            )
        )
        model: dict[int, str] = {}
        for key, value in inserts:
            if key in model:
                with pytest.raises(Exception):
                    table.insert((key, value))
            else:
                table.insert((key, value))
                model[key] = value
        assert len(table) == len(model)
        for key, value in model.items():
            fetched = table.fetch_by_key((key,))
            assert fetched is not None
            assert fetched[1] == (key, value)


# ---------------------------------------------------------------------------
# SQL printer round-trip on generated ASTs
# ---------------------------------------------------------------------------

names = st.sampled_from(["a", "b", "c", "x1", "col"])
# Non-negative only: "-1" reparses as unary minus over Literal(1), which is
# semantically identical but structurally different.
literals = st.one_of(
    st.integers(0, 100),
    st.booleans(),
    st.none(),
    st.text(alphabet="ab'c ", max_size=6),
)


def expressions(depth=2):
    base = st.one_of(
        literals.map(ast.Literal),
        names.map(ast.ColumnRef),
        st.tuples(names, names).map(lambda t: ast.ColumnRef(t[0], t[1])),
    )
    if depth == 0:
        return base
    sub = expressions(depth - 1)
    return st.one_of(
        base,
        st.tuples(st.sampled_from(["+", "-", "*", "=", "<", "AND", "OR", "||"]), sub, sub).map(
            lambda t: ast.BinaryOp(t[0], t[1], t[2])
        ),
        sub.map(lambda e: ast.UnaryOp("NOT", e)),
        st.tuples(sub, st.booleans()).map(lambda t: ast.IsNull(t[0], t[1])),
        st.tuples(sub, sub, sub).map(lambda t: ast.Between(t[0], t[1], t[2])),
        st.lists(sub, min_size=1, max_size=3).map(
            lambda items: ast.FunctionCall("COALESCE", items)
        ),
    )


class TestPrinterRoundTrip:
    @given(expressions())
    @settings(max_examples=200, suppress_health_check=[HealthCheck.too_slow])
    def test_expression_roundtrip(self, expr):
        select = ast.Select(items=[ast.SelectItem(expr, "out")])
        text = to_sql(select)
        reparsed = parse_statement(text)
        assert reparsed == select, text

    @given(
        st.lists(names, min_size=1, max_size=3, unique=True),
        st.booleans(),
        st.integers(1, 50),
    )
    def test_select_shape_roundtrip(self, columns, distinct, limit):
        select = ast.Select(
            items=[ast.SelectItem(ast.ColumnRef(c)) for c in columns],
            from_clause=[ast.TableName("t")],
            distinct=distinct,
            limit=limit,
        )
        assert parse_statement(to_sql(select)) == select


# ---------------------------------------------------------------------------
# Engine invariants on generated data
# ---------------------------------------------------------------------------


@st.composite
def small_tables(draw):
    rows = draw(
        st.lists(
            st.tuples(
                st.integers(0, 50),
                st.integers(-10, 10),
                st.sampled_from(["x", "y", "z", None]),
            ),
            min_size=0,
            max_size=30,
        )
    )
    return rows


class TestEngineInvariants:
    def _load(self, rows):
        engine = LocalEngine(Catalog())
        engine.execute(
            "CREATE TABLE t (k INTEGER, n INTEGER, s VARCHAR(4))"
        )
        for k, n, s in rows:
            engine.execute("INSERT INTO t VALUES (?, ?, ?)", [k, n, s])
        return engine

    @given(small_tables())
    @settings(max_examples=60, deadline=None)
    def test_count_matches_python(self, rows):
        engine = self._load(rows)
        assert engine.execute("SELECT COUNT(*) FROM t").scalar() == len(rows)

    @given(small_tables(), st.integers(-10, 10))
    @settings(max_examples=60, deadline=None)
    def test_filter_matches_python(self, rows, threshold):
        engine = self._load(rows)
        got = engine.execute(f"SELECT COUNT(*) FROM t WHERE n > {threshold}").scalar()
        assert got == sum(1 for _, n, _ in rows if n > threshold)

    @given(small_tables())
    @settings(max_examples=60, deadline=None)
    def test_group_by_partitions_rows(self, rows):
        engine = self._load(rows)
        result = engine.execute("SELECT k, COUNT(*) FROM t GROUP BY k")
        assert sum(r[1] for r in result.rows) == len(rows)
        keys = [r[0] for r in result.rows]
        assert len(keys) == len(set(keys))

    @given(small_tables())
    @settings(max_examples=60, deadline=None)
    def test_order_by_sorts(self, rows):
        engine = self._load(rows)
        result = engine.execute("SELECT n FROM t ORDER BY n")
        values = [r[0] for r in result.rows]
        assert values == sorted(values)

    @given(small_tables())
    @settings(max_examples=60, deadline=None)
    def test_distinct_is_set(self, rows):
        engine = self._load(rows)
        result = engine.execute("SELECT DISTINCT s FROM t")
        values = [r[0] for r in result.rows]
        assert len(values) == len(set(values))
        assert set(values) == {s for _, _, s in rows}

    @given(small_tables())
    @settings(max_examples=40, deadline=None)
    def test_union_all_concatenates(self, rows):
        engine = self._load(rows)
        total = engine.execute(
            "SELECT COUNT(*) FROM (SELECT k FROM t UNION ALL SELECT k FROM t) u"
        ).scalar()
        assert total == 2 * len(rows)

    @given(small_tables())
    @settings(max_examples=40, deadline=None)
    def test_except_self_is_empty(self, rows):
        engine = self._load(rows)
        result = engine.execute("SELECT k FROM t EXCEPT SELECT k FROM t")
        assert result.rows == []


# ---------------------------------------------------------------------------
# compare_values total-order sanity
# ---------------------------------------------------------------------------

comparable = st.one_of(st.integers(-50, 50), st.floats(
    allow_nan=False, allow_infinity=False, min_value=-50, max_value=50
))


class TestCompareValues:
    @given(comparable, comparable)
    def test_antisymmetry(self, a, b):
        assert compare_values(a, b) == -compare_values(b, a)

    @given(comparable)
    def test_reflexive(self, a):
        assert compare_values(a, a) == 0

    @given(st.lists(comparable, min_size=1, max_size=10))
    def test_sort_key_consistent_with_compare(self, values):
        by_key = sorted(values, key=null_first_key)
        for left, right in zip(by_key, by_key[1:]):
            assert compare_values(left, right) <= 0
