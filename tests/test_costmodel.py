"""Unit tests for the global cost model and selectivity estimation."""

import pytest

from repro.myriad import MyriadSystem
from repro.query.cost import CostModel
from repro.sql import parse_expression


@pytest.fixture
def model():
    system = MyriadSystem()
    gateway = system.add_postgres("s")
    gateway.dbms.execute(
        "CREATE TABLE t (k INTEGER PRIMARY KEY, grp INTEGER, val FLOAT, "
        "name VARCHAR(16))"
    )
    session = gateway.dbms.connect()
    session.begin()
    for i in range(200):
        session.execute(
            "INSERT INTO t VALUES (?, ?, ?, ?)",
            [i, i % 10, float(i), f"n{i % 4}"],
        )
    session.commit()
    gateway.export_table("t", "rel", ["k", "grp", "val", "name"])
    return CostModel(system.gateways, system.network), system


class TestSelectivity:
    def test_no_predicate_is_one(self, model):
        cost_model, _ = model
        stats = cost_model.export_stats("s", "rel")
        assert cost_model.predicate_selectivity(stats, None) == 1.0

    def test_equality_uses_distinct_count(self, model):
        cost_model, _ = model
        stats = cost_model.export_stats("s", "rel")
        sel = cost_model.predicate_selectivity(
            stats, parse_expression("grp = 3")
        )
        assert sel == pytest.approx(0.1)

    def test_pk_equality_is_one_row(self, model):
        cost_model, _ = model
        stats = cost_model.export_stats("s", "rel")
        sel = cost_model.predicate_selectivity(stats, parse_expression("k = 3"))
        assert sel == pytest.approx(1 / 200)

    def test_range_uses_histogram(self, model):
        cost_model, _ = model
        stats = cost_model.export_stats("s", "rel")
        sel = cost_model.predicate_selectivity(
            stats, parse_expression("val < 50.0")
        )
        assert 0.15 < sel < 0.35

    def test_conjunction_multiplies(self, model):
        cost_model, _ = model
        stats = cost_model.export_stats("s", "rel")
        single = cost_model.predicate_selectivity(
            stats, parse_expression("grp = 3")
        )
        double = cost_model.predicate_selectivity(
            stats, parse_expression("grp = 3 AND name = 'n1'")
        )
        assert double == pytest.approx(single * 0.25, rel=0.01)

    def test_disjunction_adds(self, model):
        cost_model, _ = model
        stats = cost_model.export_stats("s", "rel")
        sel = cost_model.predicate_selectivity(
            stats, parse_expression("grp = 1 OR grp = 2")
        )
        assert sel == pytest.approx(0.1 + 0.1 - 0.01)

    def test_inequality_complements(self, model):
        cost_model, _ = model
        stats = cost_model.export_stats("s", "rel")
        sel = cost_model.predicate_selectivity(
            stats, parse_expression("grp <> 3")
        )
        assert sel == pytest.approx(0.9)

    def test_in_list_uses_column_stats(self, model):
        # regression: IN used to charge the System-R default (0.1) per
        # item even when per-column statistics existed
        cost_model, _ = model
        stats = cost_model.export_stats("s", "rel")
        sel = cost_model.predicate_selectivity(
            stats, parse_expression("grp IN (1, 2, 3)")
        )
        assert sel == pytest.approx(0.3)

    def test_in_list_over_key_column_is_selective(self, model):
        cost_model, _ = model
        stats = cost_model.export_stats("s", "rel")
        sel = cost_model.predicate_selectivity(
            stats, parse_expression("k IN (1, 2, 3, 4)")
        )
        assert sel == pytest.approx(4 / 200)

    def test_in_list_dedupes_duplicate_literals(self, model):
        # regression: generated semijoin key lists repeat literals; each
        # occurrence used to count as a fresh disjunct
        cost_model, _ = model
        stats = cost_model.export_stats("s", "rel")
        deduped = cost_model.predicate_selectivity(
            stats, parse_expression("grp IN (1, 1, 1)")
        )
        assert deduped == pytest.approx(0.1)

    def test_not_in_complements(self, model):
        cost_model, _ = model
        stats = cost_model.export_stats("s", "rel")
        sel = cost_model.predicate_selectivity(
            stats, parse_expression("grp NOT IN (1, 2)")
        )
        assert sel == pytest.approx(0.8)

    def test_never_zero_or_above_one(self, model):
        cost_model, _ = model
        stats = cost_model.export_stats("s", "rel")
        tiny = cost_model.predicate_selectivity(
            stats,
            parse_expression("k = 1 AND k = 2 AND k = 3 AND k = 4 AND k = 5"),
        )
        assert tiny > 0
        big = cost_model.predicate_selectivity(
            stats, parse_expression("grp = 1 OR grp <> 1")
        )
        assert big <= 1.0


class TestFragmentEstimates:
    def test_rows_scale_with_predicate(self, model):
        cost_model, _ = model
        full = cost_model.estimate_fragment("s", "rel", None, None)
        filtered = cost_model.estimate_fragment(
            "s", "rel", None, parse_expression("grp = 3")
        )
        assert full.rows == 200
        assert filtered.rows == pytest.approx(20)

    def test_row_bytes_scale_with_columns(self, model):
        cost_model, _ = model
        wide = cost_model.estimate_fragment("s", "rel", None, None)
        narrow = cost_model.estimate_fragment("s", "rel", ["k"], None)
        assert narrow.row_bytes < wide.row_bytes
        assert narrow.total_bytes < wide.total_bytes

    def test_projected_width_uses_per_column_byte_stats(self, model):
        # regression: a projection used to be charged an even share of
        # avg_row_bytes per column regardless of the columns' real widths
        cost_model, _ = model
        stats = cost_model.export_stats("s", "rel")
        # k INTEGER → 8 bytes; name 'n0'..'n3' → 2 + 4 = 6 bytes
        key_only = cost_model.estimate_fragment("s", "rel", ["k"], None)
        name_only = cost_model.estimate_fragment("s", "rel", ["name"], None)
        assert key_only.row_bytes == pytest.approx(8.0)
        assert name_only.row_bytes == pytest.approx(6.0)
        # all columns together reproduce the full row width
        every = cost_model.estimate_fragment(
            "s", "rel", ["k", "grp", "val", "name"], None
        )
        assert every.row_bytes == pytest.approx(stats.avg_row_bytes)

    def test_fetch_cost_monotone_in_size(self, model):
        cost_model, _ = model
        cheap = cost_model.fetch_cost(
            "s", "rel", ["k"], parse_expression("grp = 3")
        )
        expensive = cost_model.fetch_cost("s", "rel", None, None)
        assert cheap < expensive

    def test_transfer_cost_includes_latency(self, model):
        cost_model, _ = model
        assert cost_model.transfer_cost("s", 0) > 0
        assert cost_model.transfer_cost("s", 1_000_000) > (
            cost_model.transfer_cost("s", 0)
        )


class TestSemijoinBenefit:
    def test_positive_for_selective_source(self, model):
        cost_model, system = model
        gateway2 = system.add_oracle("s2")
        gateway2.dbms.execute(
            "CREATE TABLE big (k INTEGER PRIMARY KEY, pad VARCHAR2(64))"
        )
        session = gateway2.dbms.connect()
        session.begin()
        for i in range(2000):
            session.execute(
                "INSERT INTO big VALUES (?, ?)", [i, "x" * 64]
            )
        session.commit()
        gateway2.export_table("big", "big", ["k", "pad"])

        benefit = cost_model.semijoin_benefit(
            "s",
            "rel",
            parse_expression("grp = 3"),
            "k",
            "s2",
            "big",
            None,
            None,
            "k",
        )
        assert benefit > 0

    def test_negative_for_full_match(self, model):
        cost_model, _ = model
        # reducing rel by its own full key set cannot win
        benefit = cost_model.semijoin_benefit(
            "s", "rel", None, "k", "s", "rel", None, ["k"], "k"
        )
        assert benefit <= 0
