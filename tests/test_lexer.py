"""Lexer unit tests."""

import pytest

from repro.errors import LexerError
from repro.sql.lexer import tokenize
from repro.sql.tokens import TokenType


def kinds(text):
    return [t.type for t in tokenize(text)[:-1]]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_whitespace_only(self):
        assert tokenize("   \n\t  ")[-1].type is TokenType.EOF
        assert len(tokenize("   \n\t  ")) == 1

    def test_keywords_are_uppercased(self):
        assert values("select From WHERE") == ["SELECT", "FROM", "WHERE"]
        assert kinds("select From WHERE") == [TokenType.KEYWORD] * 3

    def test_identifiers_preserve_case(self):
        tokens = tokenize("myTable Col_1")
        assert tokens[0].value == "myTable"
        assert tokens[1].value == "Col_1"
        assert tokens[0].type is TokenType.IDENTIFIER

    def test_identifier_with_dollar_and_hash(self):
        assert values("emp$x t#2") == ["emp$x", "t#2"]

    def test_integer_literal(self):
        tokens = tokenize("42")
        assert tokens[0].type is TokenType.INTEGER
        assert tokens[0].value == "42"

    def test_float_literals(self):
        for text in ("3.14", "0.5", ".5", "1e3", "1E-3", "2.5e+7", "1."):
            token = tokenize(text)[0]
            assert token.type is TokenType.FLOAT, text

    def test_integer_not_float(self):
        assert tokenize("123")[0].type is TokenType.INTEGER

    def test_string_literal(self):
        token = tokenize("'hello'")[0]
        assert token.type is TokenType.STRING
        assert token.value == "hello"

    def test_string_with_escaped_quote(self):
        assert tokenize("'it''s'")[0].value == "it's"

    def test_empty_string_literal(self):
        assert tokenize("''")[0].value == ""

    def test_quoted_identifier(self):
        token = tokenize('"Weird Name"')[0]
        assert token.type is TokenType.QUOTED_IDENTIFIER
        assert token.value == "Weird Name"

    def test_quoted_identifier_with_escaped_quote(self):
        assert tokenize('"a""b"')[0].value == 'a"b'

    def test_parameter(self):
        assert tokenize("?")[0].type is TokenType.PARAMETER


class TestOperators:
    def test_multi_char_operators(self):
        assert values("<> != >= <= ||") == ["<>", "!=", ">=", "<=", "||"]

    def test_single_char_operators(self):
        assert values("+ - * / % < > =") == list("+-*/%<>=")

    def test_punctuation(self):
        assert values("( ) , . ;") == list("(),.;")

    def test_greedy_matching(self):
        # "<=" must not lex as "<" then "="
        assert values("a<=b") == ["a", "<=", "b"]


class TestComments:
    def test_line_comment(self):
        assert values("SELECT -- comment here\n 1") == ["SELECT", "1"]

    def test_line_comment_at_eof(self):
        assert values("SELECT 1 -- trailing") == ["SELECT", "1"]

    def test_block_comment(self):
        assert values("SELECT /* hi */ 1") == ["SELECT", "1"]

    def test_multiline_block_comment(self):
        assert values("SELECT /* line1\nline2 */ 1") == ["SELECT", "1"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexerError):
            tokenize("SELECT /* oops")


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(LexerError):
            tokenize("'oops")

    def test_unterminated_quoted_identifier(self):
        with pytest.raises(LexerError):
            tokenize('"oops')

    def test_unexpected_character(self):
        with pytest.raises(LexerError):
            tokenize("SELECT @")

    def test_error_carries_position(self):
        with pytest.raises(LexerError) as exc:
            tokenize("SELECT\n  @")
        assert exc.value.line == 2


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("SELECT\n  name")
        assert tokens[0].line == 1 and tokens[0].column == 1
        assert tokens[1].line == 2 and tokens[1].column == 3

    def test_matches_helper(self):
        token = tokenize("SELECT")[0]
        assert token.matches(TokenType.KEYWORD, "SELECT")
        assert not token.matches(TokenType.KEYWORD, "FROM")
        assert token.matches(TokenType.KEYWORD)
