"""Shared fixtures for the test suite."""

import pytest

from repro.engine import LocalEngine
from repro.storage import Catalog

EMP_ROWS = [
    (7839, "KING", "PRESIDENT", None, 5000.0, None, 10),
    (7698, "BLAKE", "MANAGER", 7839, 2850.0, None, 30),
    (7782, "CLARK", "MANAGER", 7839, 2450.0, None, 10),
    (7566, "JONES", "MANAGER", 7839, 2975.0, None, 20),
    (7788, "SCOTT", "ANALYST", 7566, 3000.0, None, 20),
    (7902, "FORD", "ANALYST", 7566, 3000.0, None, 20),
    (7369, "SMITH", "CLERK", 7902, 800.0, None, 20),
    (7499, "ALLEN", "SALESMAN", 7698, 1600.0, 300.0, 30),
    (7521, "WARD", "SALESMAN", 7698, 1250.0, 500.0, 30),
    (7654, "MARTIN", "SALESMAN", 7698, 1250.0, 1400.0, 30),
    (7844, "TURNER", "SALESMAN", 7698, 1500.0, 0.0, 30),
    (7876, "ADAMS", "CLERK", 7788, 1100.0, None, 20),
    (7900, "JAMES", "CLERK", 7698, 950.0, None, 30),
    (7934, "MILLER", "CLERK", 7782, 1300.0, None, 10),
]

DEPT_ROWS = [
    (10, "ACCOUNTING", "NEW YORK"),
    (20, "RESEARCH", "DALLAS"),
    (30, "SALES", "CHICAGO"),
    (40, "OPERATIONS", "BOSTON"),
]


@pytest.fixture
def engine():
    """A LocalEngine loaded with the classic EMP/DEPT dataset."""
    catalog = Catalog("scott")
    eng = LocalEngine(catalog)
    eng.execute(
        "CREATE TABLE emp (empno INTEGER PRIMARY KEY, ename VARCHAR(20), "
        "job VARCHAR(20), mgr INTEGER, sal FLOAT, comm FLOAT, deptno INTEGER)"
    )
    eng.execute(
        "CREATE TABLE dept (deptno INTEGER PRIMARY KEY, "
        "dname VARCHAR(20), loc VARCHAR(20))"
    )
    for row in EMP_ROWS:
        eng.execute(
            "INSERT INTO emp VALUES (?, ?, ?, ?, ?, ?, ?)", list(row)
        )
    for row in DEPT_ROWS:
        eng.execute("INSERT INTO dept VALUES (?, ?, ?)", list(row))
    return eng


@pytest.fixture(scope="module")
def university():
    """Module-scoped university federation (read-only tests!)."""
    from repro.workloads import build_university_system

    return build_university_system(
        students_per_campus=60, courses_per_campus=12, staff_count=20, seed=5
    )
