"""Local engine SELECT tests over the classic EMP/DEPT dataset."""

import pytest

from repro.errors import CatalogError, ExecutionError


def rows(engine, sql):
    return engine.execute(sql).rows


class TestProjectionFilter:
    def test_select_star_column_order(self, engine):
        result = engine.execute("SELECT * FROM dept")
        assert result.columns == ["deptno", "dname", "loc"]
        assert len(result) == 4

    def test_qualified_star(self, engine):
        result = engine.execute(
            "SELECT d.* FROM emp e JOIN dept d ON e.deptno = d.deptno "
            "WHERE e.ename = 'KING'"
        )
        assert result.rows == [(10, "ACCOUNTING", "NEW YORK")]

    def test_where_filtering(self, engine):
        assert len(rows(engine, "SELECT * FROM emp WHERE sal > 2800")) == 5

    def test_computed_projection(self, engine):
        result = engine.execute(
            "SELECT ename, sal * 12 AS annual FROM emp WHERE empno = 7839"
        )
        assert result.rows == [("KING", 60000.0)]
        assert result.columns == ["ename", "annual"]

    def test_null_comparison_filters_out(self, engine):
        # comm IS NULL for most; comm > 0 must not match NULL rows
        assert len(rows(engine, "SELECT * FROM emp WHERE comm > 0")) == 3

    def test_is_null_predicate(self, engine):
        assert len(rows(engine, "SELECT * FROM emp WHERE comm IS NULL")) == 10

    def test_select_without_from(self, engine):
        assert rows(engine, "SELECT 1 + 1") == [(2,)]

    def test_unknown_table(self, engine):
        with pytest.raises(CatalogError):
            engine.execute("SELECT * FROM nope")

    def test_unknown_column(self, engine):
        with pytest.raises(CatalogError):
            engine.execute("SELECT zzz FROM emp")


class TestOrderLimit:
    def test_order_by_desc(self, engine):
        result = rows(engine, "SELECT ename FROM emp ORDER BY sal DESC LIMIT 3")
        assert [r[0] for r in result] == ["KING", "SCOTT", "FORD"] or [
            r[0] for r in result
        ] == ["KING", "FORD", "SCOTT"]

    def test_multi_key_order(self, engine):
        result = rows(
            engine, "SELECT deptno, ename FROM emp ORDER BY deptno, ename"
        )
        assert result[0] == (10, "CLARK")
        assert result[-1] == (30, "WARD")

    def test_order_stability_with_mixed_directions(self, engine):
        result = rows(
            engine,
            "SELECT deptno, sal, ename FROM emp ORDER BY deptno ASC, sal DESC",
        )
        # within dept 20, salaries must be non-increasing
        dept20 = [r for r in result if r[0] == 20]
        sals = [r[1] for r in dept20]
        assert sals == sorted(sals, reverse=True)

    def test_order_by_position(self, engine):
        result = rows(engine, "SELECT ename, sal FROM emp ORDER BY 2 DESC LIMIT 1")
        assert result[0][0] == "KING"

    def test_order_by_alias(self, engine):
        result = rows(
            engine,
            "SELECT ename, sal * 12 AS annual FROM emp ORDER BY annual LIMIT 1",
        )
        assert result[0][0] == "SMITH"

    def test_order_by_expression_not_in_output(self, engine):
        result = rows(engine, "SELECT ename FROM emp ORDER BY sal LIMIT 2")
        assert [r[0] for r in result] == ["SMITH", "JAMES"]

    def test_limit_offset(self, engine):
        all_names = rows(engine, "SELECT ename FROM emp ORDER BY empno")
        page = rows(
            engine, "SELECT ename FROM emp ORDER BY empno LIMIT 3 OFFSET 2"
        )
        assert page == all_names[2:5]

    def test_nulls_sort_first(self, engine):
        result = rows(engine, "SELECT comm FROM emp ORDER BY comm LIMIT 1")
        assert result[0][0] is None

    def test_order_position_out_of_range(self, engine):
        with pytest.raises(ExecutionError):
            engine.execute("SELECT ename FROM emp ORDER BY 5")


class TestJoins:
    def test_inner_join(self, engine):
        result = rows(
            engine,
            "SELECT e.ename, d.dname FROM emp e JOIN dept d "
            "ON e.deptno = d.deptno WHERE d.loc = 'DALLAS'",
        )
        assert len(result) == 5
        assert all(r[1] == "RESEARCH" for r in result)

    def test_implicit_join(self, engine):
        result = rows(
            engine,
            "SELECT e.ename FROM emp e, dept d "
            "WHERE e.deptno = d.deptno AND d.dname = 'SALES'",
        )
        assert len(result) == 6

    def test_left_join_keeps_unmatched(self, engine):
        result = rows(
            engine,
            "SELECT d.dname, e.ename FROM dept d LEFT JOIN emp e "
            "ON d.deptno = e.deptno WHERE e.empno IS NULL",
        )
        assert result == [("OPERATIONS", None)]

    def test_right_join(self, engine):
        result = rows(
            engine,
            "SELECT d.dname FROM emp e RIGHT JOIN dept d "
            "ON e.deptno = d.deptno WHERE e.empno IS NULL",
        )
        assert result == [("OPERATIONS",)]

    def test_full_join(self, engine):
        engine.execute("CREATE TABLE a (x INTEGER)")
        engine.execute("CREATE TABLE b (y INTEGER)")
        engine.execute("INSERT INTO a VALUES (1), (2)")
        engine.execute("INSERT INTO b VALUES (2), (3)")
        result = sorted(
            rows(engine, "SELECT x, y FROM a FULL JOIN b ON a.x = b.y"),
            key=lambda r: (r[0] is None, r[0] or 0),
        )
        assert result == [(1, None), (2, 2), (None, 3)]

    def test_cross_join_cardinality(self, engine):
        assert len(rows(engine, "SELECT * FROM emp CROSS JOIN dept")) == 56

    def test_self_join(self, engine):
        result = rows(
            engine,
            "SELECT e.ename, m.ename FROM emp e JOIN emp m ON e.mgr = m.empno "
            "WHERE m.ename = 'KING' ORDER BY e.ename",
        )
        assert [r[0] for r in result] == ["BLAKE", "CLARK", "JONES"]

    def test_join_using(self, engine):
        result = rows(
            engine,
            "SELECT e.ename FROM emp e JOIN dept d USING (deptno) "
            "WHERE d.dname = 'ACCOUNTING'",
        )
        assert len(result) == 3

    def test_three_way_join(self, engine):
        result = rows(
            engine,
            "SELECT e.ename FROM emp e JOIN emp m ON e.mgr = m.empno "
            "JOIN dept d ON m.deptno = d.deptno WHERE d.dname = 'ACCOUNTING' "
            "ORDER BY e.ename",
        )
        # managers in dept 10: KING (manages 3), CLARK (manages MILLER)
        assert [r[0] for r in result] == ["BLAKE", "CLARK", "JONES", "MILLER"]

    def test_non_equi_join(self, engine):
        result = rows(
            engine,
            "SELECT COUNT(*) FROM emp e JOIN emp g "
            "ON e.sal > g.sal AND g.ename = 'KING'",
        )
        assert result == [(0,)]

    def test_join_null_keys_never_match(self, engine):
        # KING has NULL mgr; a self-join on mgr must not match NULL=anything
        result = rows(
            engine,
            "SELECT COUNT(*) FROM emp e JOIN emp m ON e.mgr = m.mgr "
            "WHERE e.ename = 'KING'",
        )
        assert result == [(0,)]


class TestAggregation:
    def test_global_aggregates(self, engine):
        result = engine.execute(
            "SELECT COUNT(*), SUM(sal), MIN(sal), MAX(sal), AVG(sal) FROM emp"
        )
        count, total, minimum, maximum, average = result.rows[0]
        assert count == 14
        assert total == pytest.approx(29025.0)
        assert minimum == 800.0
        assert maximum == 5000.0
        assert average == pytest.approx(29025.0 / 14)

    def test_count_column_skips_nulls(self, engine):
        assert rows(engine, "SELECT COUNT(comm) FROM emp") == [(4,)]

    def test_count_distinct(self, engine):
        assert rows(engine, "SELECT COUNT(DISTINCT deptno) FROM emp") == [(3,)]

    def test_group_by(self, engine):
        result = dict(
            rows(engine, "SELECT deptno, COUNT(*) FROM emp GROUP BY deptno")
        )
        assert result == {10: 3, 20: 5, 30: 6}

    def test_group_by_expression(self, engine):
        result = rows(
            engine,
            "SELECT sal >= 3000, COUNT(*) FROM emp GROUP BY sal >= 3000",
        )
        assert dict(result) == {True: 3, False: 11}

    def test_having(self, engine):
        result = rows(
            engine,
            "SELECT deptno FROM emp GROUP BY deptno HAVING COUNT(*) > 4 "
            "ORDER BY deptno",
        )
        assert result == [(20,), (30,)]

    def test_having_on_aggregate_not_in_select(self, engine):
        result = rows(
            engine,
            "SELECT deptno FROM emp GROUP BY deptno HAVING AVG(sal) > 2100",
        )
        assert result == [(10,), (20,)] or sorted(result) == [(10,), (20,)]

    def test_aggregate_of_expression(self, engine):
        result = rows(engine, "SELECT SUM(sal + COALESCE(comm, 0)) FROM emp")
        assert result[0][0] == pytest.approx(29025.0 + 2200.0)

    def test_empty_group_aggregate(self, engine):
        result = engine.execute("SELECT COUNT(*), SUM(sal) FROM emp WHERE sal > 99999")
        assert result.rows == [(0, None)]

    def test_group_by_empty_input_no_rows(self, engine):
        result = engine.execute(
            "SELECT deptno, COUNT(*) FROM emp WHERE sal > 99999 GROUP BY deptno"
        )
        assert result.rows == []

    def test_avg_of_nulls_is_null(self, engine):
        result = rows(engine, "SELECT AVG(comm) FROM emp WHERE comm IS NULL")
        assert result == [(None,)]

    def test_order_by_aggregate(self, engine):
        result = rows(
            engine,
            "SELECT deptno FROM emp GROUP BY deptno ORDER BY AVG(sal) DESC",
        )
        assert result == [(10,), (20,), (30,)]

    def test_group_key_in_expression(self, engine):
        result = rows(
            engine,
            "SELECT deptno * 10, COUNT(*) FROM emp GROUP BY deptno "
            "ORDER BY deptno",
        )
        assert result[0] == (100, 3)

    def test_having_without_group_by_rejected(self, engine):
        with pytest.raises(ExecutionError):
            engine.execute("SELECT ename FROM emp HAVING sal > 1")


class TestDistinctAndSetOps:
    def test_distinct(self, engine):
        result = rows(engine, "SELECT DISTINCT deptno FROM emp ORDER BY deptno")
        assert result == [(10,), (20,), (30,)]

    def test_distinct_multi_column(self, engine):
        result = rows(engine, "SELECT DISTINCT deptno, job FROM emp")
        assert len(result) == 9

    def test_union_removes_duplicates(self, engine):
        result = rows(
            engine,
            "SELECT deptno FROM emp UNION SELECT deptno FROM dept "
            "ORDER BY deptno",
        )
        assert result == [(10,), (20,), (30,), (40,)]

    def test_union_all_keeps_duplicates(self, engine):
        result = rows(
            engine, "SELECT deptno FROM emp UNION ALL SELECT deptno FROM dept"
        )
        assert len(result) == 18

    def test_intersect(self, engine):
        result = rows(
            engine,
            "SELECT deptno FROM dept INTERSECT SELECT deptno FROM emp "
            "ORDER BY deptno",
        )
        assert result == [(10,), (20,), (30,)]

    def test_except(self, engine):
        result = rows(
            engine, "SELECT deptno FROM dept EXCEPT SELECT deptno FROM emp"
        )
        assert result == [(40,)]

    def test_set_op_column_count_mismatch(self, engine):
        with pytest.raises(ExecutionError):
            engine.execute("SELECT deptno, dname FROM dept UNION SELECT deptno FROM emp")


class TestSubqueries:
    def test_in_subquery(self, engine):
        result = rows(
            engine,
            "SELECT ename FROM emp WHERE deptno IN "
            "(SELECT deptno FROM dept WHERE loc = 'NEW YORK') ORDER BY ename",
        )
        assert [r[0] for r in result] == ["CLARK", "KING", "MILLER"]

    def test_not_in_subquery(self, engine):
        result = rows(
            engine,
            "SELECT dname FROM dept WHERE deptno NOT IN "
            "(SELECT deptno FROM emp)",
        )
        assert result == [("OPERATIONS",)]

    def test_scalar_subquery(self, engine):
        result = rows(
            engine,
            "SELECT ename FROM emp WHERE sal = (SELECT MAX(sal) FROM emp)",
        )
        assert result == [("KING",)]

    def test_correlated_subquery(self, engine):
        result = rows(
            engine,
            "SELECT ename FROM emp e WHERE sal > "
            "(SELECT AVG(sal) FROM emp e2 WHERE e2.deptno = e.deptno) "
            "ORDER BY ename",
        )
        assert [r[0] for r in result] == [
            "ALLEN", "BLAKE", "FORD", "JONES", "KING", "SCOTT",
        ]

    def test_exists_correlated(self, engine):
        result = rows(
            engine,
            "SELECT dname FROM dept d WHERE EXISTS "
            "(SELECT 1 FROM emp e WHERE e.deptno = d.deptno AND e.sal > 2900) "
            "ORDER BY dname",
        )
        assert [r[0] for r in result] == ["ACCOUNTING", "RESEARCH"]

    def test_not_exists(self, engine):
        result = rows(
            engine,
            "SELECT dname FROM dept d WHERE NOT EXISTS "
            "(SELECT 1 FROM emp e WHERE e.deptno = d.deptno)",
        )
        assert result == [("OPERATIONS",)]

    def test_derived_table(self, engine):
        result = rows(
            engine,
            "SELECT dname, n FROM (SELECT deptno, COUNT(*) AS n FROM emp "
            "GROUP BY deptno) c JOIN dept ON c.deptno = dept.deptno "
            "ORDER BY n DESC LIMIT 1",
        )
        assert result == [("SALES", 6)]

    def test_scalar_subquery_multiple_rows_fails(self, engine):
        with pytest.raises(ExecutionError):
            engine.execute(
                "SELECT ename FROM emp WHERE sal = (SELECT sal FROM emp)"
            )

    def test_scalar_subquery_in_projection(self, engine):
        result = rows(
            engine,
            "SELECT dname, (SELECT COUNT(*) FROM emp e WHERE e.deptno = d.deptno) "
            "FROM dept d ORDER BY dname",
        )
        assert result == [
            ("ACCOUNTING", 3), ("OPERATIONS", 0), ("RESEARCH", 5), ("SALES", 6),
        ]


class TestPlanner:
    def test_pk_lookup_uses_index(self, engine):
        plan = engine.explain("SELECT ename FROM emp WHERE empno = 7839")
        assert "IndexScan" in plan

    def test_range_uses_ordered_index(self, engine):
        engine.execute("CREATE INDEX sal_idx ON emp (sal)")
        plan = engine.explain("SELECT ename FROM emp WHERE sal > 2000")
        assert "IndexScan" in plan

    def test_equijoin_uses_hash_join(self, engine):
        plan = engine.explain(
            "SELECT * FROM emp e JOIN dept d ON e.deptno = d.deptno"
        )
        assert "HashJoin" in plan

    def test_non_equi_join_uses_nested_loop(self, engine):
        plan = engine.explain(
            "SELECT * FROM emp e JOIN dept d ON e.deptno > d.deptno"
        )
        assert "NestedLoopJoin" in plan

    def test_filter_pushed_below_join(self, engine):
        plan = engine.explain(
            "SELECT * FROM emp e, dept d "
            "WHERE e.deptno = d.deptno AND d.dname = 'SALES'"
        )
        # the dname filter must appear under the join, not above it
        join_line = plan.index("HashJoin")
        filter_line = plan.index("Filter")
        assert filter_line > join_line

    def test_hash_join_builds_on_smaller_input(self, engine):
        engine.execute("CREATE TABLE tiny (deptno INTEGER PRIMARY KEY)")
        engine.execute("INSERT INTO tiny VALUES (10)")
        plan = engine.explain(
            "SELECT * FROM tiny t JOIN emp e ON t.deptno = e.deptno"
        )
        assert "build=left" in plan
        plan = engine.explain(
            "SELECT * FROM emp e JOIN tiny t ON t.deptno = e.deptno"
        )
        assert "build=right" in plan

    def test_build_side_choice_preserves_answers(self, engine):
        engine.execute("CREATE TABLE tiny (deptno INTEGER PRIMARY KEY)")
        engine.execute("INSERT INTO tiny VALUES (10), (30)")
        one = engine.execute(
            "SELECT e.ename FROM tiny t JOIN emp e ON t.deptno = e.deptno "
            "ORDER BY e.ename"
        ).rows
        two = engine.execute(
            "SELECT e.ename FROM emp e JOIN tiny t ON t.deptno = e.deptno "
            "ORDER BY e.ename"
        ).rows
        assert one == two
        assert len(one) == 9  # depts 10 and 30

    def test_parameter_binding(self, engine):
        result = engine.execute(
            "SELECT ename FROM emp WHERE deptno = ? AND sal > ?", [20, 2900]
        )
        assert sorted(r[0] for r in result.rows) == ["FORD", "JONES", "SCOTT"]
