"""End-to-end tests on the university example federation (paper's demo)."""

import pytest

from repro.workloads import gpa_from_percent


class TestIntegrationFunctions:
    def test_gpa_conversion(self):
        assert gpa_from_percent(100.0) == 4.0
        assert gpa_from_percent(50.0) == 2.0
        assert gpa_from_percent(None) is None


class TestStudentUnion:
    def test_both_campuses_present(self, university):
        result = university.query(
            "university",
            "SELECT campus, COUNT(*) FROM student GROUP BY campus ORDER BY campus",
        )
        assert result.rows == [("duluth", 60), ("twin_cities", 60)]

    def test_gpa_normalised_to_four_point_scale(self, university):
        low, high = university.query(
            "university", "SELECT MIN(gpa), MAX(gpa) FROM student"
        ).rows[0]
        assert 0.0 <= float(low) <= 4.0
        assert 0.0 <= float(high) <= 4.0

    def test_cross_campus_ranking(self, university):
        result = university.query(
            "university",
            "SELECT name, campus FROM student ORDER BY gpa DESC LIMIT 5",
        )
        assert len(result) == 5

    def test_filter_applies_through_integration_function(self, university):
        total = university.query(
            "university", "SELECT COUNT(*) FROM student WHERE gpa >= 3.0"
        ).scalar()
        manual = university.query(
            "university", "SELECT gpa FROM student"
        )
        expected = sum(1 for (g,) in manual.rows if g is not None and float(g) >= 3.0)
        assert total == expected


class TestEnrollmentJoin:
    def test_avg_grade_per_major(self, university):
        result = university.query(
            "university",
            "SELECT s.major, COUNT(*) AS n, AVG(e.grade) AS avg_grade "
            "FROM student s JOIN enrollment e ON s.sid = e.sid "
            "GROUP BY s.major ORDER BY s.major",
        )
        assert len(result) >= 4
        for _, n, avg_grade in result.rows:
            assert n > 0
            assert 0.0 <= float(avg_grade) <= 4.0

    def test_enrollments_match_campus(self, university):
        """Students only enroll in their own campus's courses (by construction)."""
        cross = university.query(
            "university",
            "SELECT COUNT(*) FROM student s JOIN enrollment e ON s.sid = e.sid "
            "WHERE s.campus <> e.campus",
        ).scalar()
        assert cross == 0


class TestStaffDirectoryJoinMerge:
    def test_full_outer_semantics(self, university):
        hr_count = university.gateway("twin_cities").export_stats(
            "staff_hr"
        ).row_count
        payroll_count = university.gateway("duluth").export_stats(
            "staff_payroll"
        ).row_count
        directory = university.query(
            "university", "SELECT COUNT(*) FROM staff_directory"
        ).scalar()
        both = university.query(
            "university",
            "SELECT COUNT(*) FROM staff_directory "
            "WHERE name IS NOT NULL AND salary IS NOT NULL",
        ).scalar()
        assert directory == hr_count + payroll_count - both

    def test_phone_conflict_resolution_prefers_hr(self, university):
        rows = university.query(
            "university",
            "SELECT emp_id, phone FROM staff_directory WHERE emp_id <= 20",
        ).to_dicts()
        hr_phones = dict(
            university.gateway("twin_cities")
            .execute_query("SELECT emp_id, phone FROM staff_hr")
            .rows
        )
        for row in rows:
            hr_phone = hr_phones.get(row["emp_id"])
            if hr_phone is not None:
                assert row["phone"] == hr_phone

    def test_duluth_only_staff_have_null_names(self, university):
        rows = university.query(
            "university",
            "SELECT name, salary FROM staff_directory WHERE emp_id > 20",
        ).rows
        assert rows  # the generator creates 5 Duluth-only employees
        for name, salary in rows:
            assert name is None
            assert salary is not None


class TestOptimizersOnRealisticQueries:
    QUERIES = [
        "SELECT COUNT(*) FROM student WHERE gpa > 3.5",
        "SELECT major, COUNT(*) FROM student GROUP BY major ORDER BY major",
        "SELECT s.name FROM student s JOIN enrollment e ON s.sid = e.sid "
        "GROUP BY s.name HAVING COUNT(*) >= 3 ORDER BY s.name LIMIT 10",
        "SELECT title FROM course WHERE campus = 'duluth' ORDER BY title LIMIT 5",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_optimizers_agree(self, university, sql):
        simple = university.query("university", sql, optimizer="simple")
        cost = university.query("university", sql, optimizer="cost")
        assert sorted(map(repr, simple.rows)) == sorted(map(repr, cost.rows))

    def test_cost_never_ships_more_than_simple(self, university):
        for sql in self.QUERIES:
            simple = university.query("university", sql, optimizer="simple")
            cost = university.query("university", sql, optimizer="cost")
            assert cost.bytes_shipped <= simple.bytes_shipped


class TestDeterminism:
    def test_same_seed_same_data(self):
        from repro.workloads import build_university_system

        one = build_university_system(
            students_per_campus=10, courses_per_campus=4, staff_count=5, seed=3
        )
        two = build_university_system(
            students_per_campus=10, courses_per_campus=4, staff_count=5, seed=3
        )
        q = "SELECT name, gpa FROM student ORDER BY sid, campus"
        assert (
            one.query("university", q).rows == two.query("university", q).rows
        )

    def test_different_seed_different_data(self):
        from repro.workloads import build_university_system

        one = build_university_system(
            students_per_campus=10, courses_per_campus=4, staff_count=5, seed=3
        )
        two = build_university_system(
            students_per_campus=10, courses_per_campus=4, staff_count=5, seed=4
        )
        q = "SELECT name FROM student ORDER BY sid, campus"
        assert (
            one.query("university", q).rows != two.query("university", q).rows
        )
