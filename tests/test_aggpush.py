"""Tests for aggregate pushdown (partial aggregation at component sites)."""

import pytest

from repro.myriad import MyriadSystem
from repro.schema import union_merge


def _norm(rows):
    return sorted(
        tuple(
            round(float(v), 6)
            if isinstance(v, (int, float)) and not isinstance(v, bool)
            else v
            for v in row
        )
        for row in rows
    )


@pytest.fixture
def system():
    sys_ = MyriadSystem()
    a = sys_.add_postgres("a")
    b = sys_.add_oracle("b")
    a.dbms.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, grp INTEGER, val FLOAT)"
    )
    b.dbms.execute(
        "CREATE TABLE u (id INTEGER PRIMARY KEY, grp INTEGER, val NUMBER)"
    )
    for owner, table, base in ((a, "t", 0), (b, "u", 1000)):
        session = owner.dbms.connect()
        session.begin()
        for i in range(60):
            session.execute(
                f"INSERT INTO {table} VALUES (?, ?, ?)",
                [base + i, i % 4, float(i)],
            )
        session.commit()
    a.export_table("t", "rel", ["id", "grp", "val"])
    b.export_table("u", "rel", ["id", "grp", "val"])
    fed = sys_.create_federation("f")
    fed.add_relation(
        union_merge(
            "merged",
            [("a", "rel", ["id", "grp", "val"]),
             ("b", "rel", ["id", "grp", "val"])],
            source_tag_column="src",
        )
    )
    return sys_


AGG_QUERIES = [
    "SELECT COUNT(*) FROM merged",
    "SELECT grp, COUNT(*) FROM merged GROUP BY grp ORDER BY grp",
    "SELECT grp, SUM(val) FROM merged GROUP BY grp ORDER BY grp",
    "SELECT grp, AVG(val) FROM merged GROUP BY grp ORDER BY grp",
    "SELECT grp, MIN(val), MAX(val) FROM merged GROUP BY grp ORDER BY grp",
    "SELECT src, grp, COUNT(*) FROM merged GROUP BY src, grp ORDER BY src, grp",
    "SELECT grp, COUNT(*) AS n FROM merged GROUP BY grp HAVING COUNT(*) > 10 "
    "ORDER BY n DESC, grp",
    "SELECT grp, SUM(val) + 1 AS s1 FROM merged GROUP BY grp ORDER BY grp",
    "SELECT COUNT(val) FROM merged",
    "SELECT AVG(val) FROM merged",
]


class TestCorrectness:
    @pytest.mark.parametrize("sql", AGG_QUERIES)
    def test_matches_no_pushdown(self, system, sql):
        plain = system.query("f", sql, optimizer="cost-noaggpush")
        pushed = system.query("f", sql, optimizer="cost")
        assert _norm(pushed.rows) == _norm(plain.rows), sql

    def test_empty_groups_handled(self, system):
        sql = "SELECT grp, COUNT(*) FROM merged WHERE val > 1e9 GROUP BY grp"
        plain = system.query("f", sql, optimizer="cost-noaggpush")
        pushed = system.query("f", sql, optimizer="cost")
        assert pushed.rows == plain.rows == []

    def test_global_aggregate_over_empty(self, system):
        sql = "SELECT COUNT(*), SUM(val), AVG(val) FROM merged WHERE val > 1e9"
        pushed = system.query("f", sql, optimizer="cost")
        assert pushed.rows == [(0, None, None)]


class TestReduction:
    def test_fetched_rows_shrink(self, system):
        sql = "SELECT grp, COUNT(*), SUM(val) FROM merged GROUP BY grp"
        plain = system.query("f", sql, optimizer="cost-noaggpush")
        pushed = system.query("f", sql, optimizer="cost")
        assert plain.fetched_rows == 120
        assert pushed.fetched_rows <= 8  # ≤ 4 groups per site
        assert pushed.bytes_shipped < plain.bytes_shipped

    def test_plan_ships_whole_blocks(self, system):
        plan = system.processor("f").plan(
            "SELECT grp, COUNT(*) FROM merged GROUP BY grp", "cost"
        )
        assert all(f.whole_query is not None for f in plan.fetches)

    def test_selection_combines_with_aggpush(self, system):
        sql = (
            "SELECT grp, COUNT(*) FROM merged WHERE val < 10 "
            "GROUP BY grp ORDER BY grp"
        )
        plain = system.query("f", sql, optimizer="cost-noaggpush")
        pushed = system.query("f", sql, optimizer="cost")
        assert _norm(pushed.rows) == _norm(plain.rows)
        assert pushed.fetched_rows <= plain.fetched_rows


class TestSafetyGuards:
    def test_distinct_aggregate_not_pushed(self, system):
        sql = "SELECT grp, COUNT(DISTINCT val) FROM merged GROUP BY grp ORDER BY grp"
        plan = system.processor("f").plan(sql, "cost")
        assert all(f.whole_query is None for f in plan.fetches)
        plain = system.query("f", sql, optimizer="cost-noaggpush")
        pushed = system.query("f", sql, optimizer="cost")
        assert _norm(pushed.rows) == _norm(plain.rows)

    def test_integration_function_branch_stays_at_federation(self):
        sys_ = MyriadSystem()
        a = sys_.add_postgres("a")
        a.dbms.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v FLOAT)")
        for i in range(10):
            a.dbms.execute(f"INSERT INTO t VALUES ({i}, {i * 1.0})")
        a.export_table("t", "rel", ["id", "v"])
        fed = sys_.create_federation("f")
        fed.register_function("TWICE", lambda v: None if v is None else v * 2)
        fed.define_relation("view_t", "SELECT id, TWICE(v) AS v2 FROM a.rel")
        result = sys_.query("f", "SELECT SUM(v2) FROM view_t", optimizer="cost")
        assert result.scalar() == sum(i * 2.0 for i in range(10))
        plan = sys_.processor("f").plan("SELECT SUM(v2) FROM view_t", "cost")
        # the UDF branch cannot ship whole
        assert all(f.whole_query is None for f in plan.fetches)

    def test_distinct_block_ships_whole(self, system):
        plan = system.processor("f").plan(
            "SELECT DISTINCT grp FROM a.rel", "cost"
        )
        assert len(plan.fetches) == 1
        assert plan.fetches[0].whole_query is not None
        result = system.query("f", "SELECT DISTINCT grp FROM a.rel", "cost")
        assert sorted(result.rows) == [(0,), (1,), (2,), (3,)]
        assert result.fetched_rows == 4

    def test_limit_block_ships_whole(self, system):
        result = system.query(
            "f", "SELECT id FROM a.rel ORDER BY id LIMIT 3", "cost"
        )
        assert result.rows == [(0,), (1,), (2,)]
        assert result.fetched_rows == 3

    def test_topn_pushdown_through_union(self, system):
        sql = "SELECT id, val FROM merged ORDER BY val DESC LIMIT 4"
        plain = system.query("f", sql, optimizer="cost-noaggpush")
        pushed = system.query("f", sql, optimizer="cost")
        assert _norm(pushed.rows) == _norm(plain.rows)
        # each branch ships at most 4 rows
        assert pushed.fetched_rows <= 8
        assert plain.fetched_rows == 120

    def test_topn_with_offset(self, system):
        sql = "SELECT id FROM merged ORDER BY val, id LIMIT 3 OFFSET 5"
        plain = system.query("f", sql, optimizer="cost-noaggpush")
        pushed = system.query("f", sql, optimizer="cost")
        assert pushed.rows == plain.rows
        assert pushed.fetched_rows <= 16  # (3+5) per branch

    def test_topn_not_pushed_without_order(self, system):
        # bare LIMIT over a union is non-deterministic but must not crash
        result = system.query("f", "SELECT id FROM merged LIMIT 5", "cost")
        assert len(result) == 5

    def test_topn_nulls_ordering_consistent(self):
        sys_ = MyriadSystem()
        a = sys_.add_postgres("a")
        b = sys_.add_postgres("b")
        for owner, table in ((a, "t"), (b, "t")):
            owner.dbms.execute(
                "CREATE TABLE t (id INTEGER PRIMARY KEY, v FLOAT)"
            )
            owner.export_table("t", "rel", ["id", "v"])
        a.dbms.execute("INSERT INTO t VALUES (1, NULL), (2, 5.0)")
        b.dbms.execute("INSERT INTO t VALUES (3, 1.0), (4, NULL)")
        fed = sys_.create_federation("f")
        fed.add_relation(
            union_merge("m", [("a", "rel", ["id", "v"]), ("b", "rel", ["id", "v"])])
        )
        sql = "SELECT id, v FROM m ORDER BY v LIMIT 3"
        plain = sys_.query("f", sql, optimizer="cost-noaggpush")
        pushed = sys_.query("f", sql, optimizer="cost")
        assert _norm(pushed.rows) == _norm(plain.rows)

    def test_oracle_side_whole_block_via_rownum(self, system):
        # LIMIT on the Oracle-dialect site exercises the ROWNUM translation
        # inside a shipped whole block.
        result = system.query(
            "f", "SELECT id FROM b.rel ORDER BY id LIMIT 2", "cost"
        )
        assert result.rows == [(1000,), (1001,)]
        assert result.fetched_rows == 2
