"""Lock manager, WAL, and local transaction tests."""

import threading
import time

import pytest

from repro.concurrency import (
    LockManager,
    LockMode,
    LocalTransactionManager,
    TxnMutator,
    TxnState,
)
from repro.concurrency.wal import LogRecordType, WriteAheadLog
from repro.errors import (
    DeadlockError,
    IntegrityError,
    LockTimeoutError,
    TransactionError,
)
from repro.storage import Column, INTEGER, Table, TableSchema, VARCHAR


def make_table():
    return Table(
        TableSchema(
            "t",
            [Column("id", INTEGER, nullable=False), Column("v", VARCHAR)],
            ["id"],
        )
    )


class TestLockManager:
    def test_shared_locks_compatible(self):
        locks = LockManager()
        locks.acquire("t1", "r", LockMode.SHARED)
        locks.acquire("t2", "r", LockMode.SHARED)
        assert locks.holds("t1", "r") is LockMode.SHARED
        assert locks.holds("t2", "r") is LockMode.SHARED

    def test_exclusive_blocks_shared(self):
        locks = LockManager()
        locks.acquire("t1", "r", LockMode.EXCLUSIVE)
        with pytest.raises(LockTimeoutError):
            locks.acquire("t2", "r", LockMode.SHARED, timeout=0.05)

    def test_shared_blocks_exclusive(self):
        locks = LockManager()
        locks.acquire("t1", "r", LockMode.SHARED)
        with pytest.raises(LockTimeoutError):
            locks.acquire("t2", "r", LockMode.EXCLUSIVE, timeout=0.05)

    def test_reentrant_acquire(self):
        locks = LockManager()
        locks.acquire("t1", "r", LockMode.SHARED)
        locks.acquire("t1", "r", LockMode.SHARED)
        locks.acquire("t1", "r", LockMode.EXCLUSIVE)  # upgrade, sole holder
        assert locks.holds("t1", "r") is LockMode.EXCLUSIVE

    def test_exclusive_covers_shared(self):
        locks = LockManager()
        locks.acquire("t1", "r", LockMode.EXCLUSIVE)
        locks.acquire("t1", "r", LockMode.SHARED)  # no-op
        assert locks.holds("t1", "r") is LockMode.EXCLUSIVE

    def test_upgrade_blocked_by_other_reader(self):
        locks = LockManager()
        locks.acquire("t1", "r", LockMode.SHARED)
        locks.acquire("t2", "r", LockMode.SHARED)
        with pytest.raises(LockTimeoutError):
            locks.acquire("t1", "r", LockMode.EXCLUSIVE, timeout=0.05)

    def test_release_all_wakes_waiters(self):
        locks = LockManager()
        locks.acquire("t1", "r", LockMode.EXCLUSIVE)
        acquired = threading.Event()

        def waiter():
            locks.acquire("t2", "r", LockMode.EXCLUSIVE, timeout=2)
            acquired.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        assert not acquired.is_set()
        locks.release_all("t1")
        thread.join(timeout=2)
        assert acquired.is_set()

    def test_wait_for_edges(self):
        locks = LockManager(detect_local_deadlocks=False)
        locks.acquire("t1", "r", LockMode.EXCLUSIVE)
        done = threading.Event()

        def waiter():
            try:
                locks.acquire("t2", "r", LockMode.EXCLUSIVE, timeout=0.5)
            except LockTimeoutError:
                pass
            done.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.1)
        assert ("t2", "t1") in locks.wait_for_edges()
        done.wait(2)
        thread.join()

    def test_local_deadlock_detected(self):
        locks = LockManager()
        locks.acquire("t1", "a", LockMode.EXCLUSIVE)
        locks.acquire("t2", "b", LockMode.EXCLUSIVE)
        errors = []

        def t1_wants_b():
            try:
                locks.acquire("t1", "b", LockMode.EXCLUSIVE, timeout=2)
            except (DeadlockError, LockTimeoutError) as e:
                errors.append(type(e).__name__)

        thread = threading.Thread(target=t1_wants_b)
        thread.start()
        time.sleep(0.1)
        with pytest.raises((DeadlockError, LockTimeoutError)):
            locks.acquire("t2", "a", LockMode.EXCLUSIVE, timeout=2)
        locks.release_all("t2")
        thread.join(timeout=2)

    def test_counters(self):
        locks = LockManager()
        locks.acquire("t1", "r", LockMode.SHARED)
        assert locks.acquisitions >= 1
        with pytest.raises(LockTimeoutError):
            locks.acquire("t2", "r", LockMode.EXCLUSIVE, timeout=0.01)
        assert locks.timeouts == 1


class TestWAL:
    def test_lsn_monotonic(self):
        wal = WriteAheadLog()
        first = wal.append(LogRecordType.BEGIN, "t1")
        second = wal.append(LogRecordType.COMMIT, "t1")
        assert second.lsn == first.lsn + 1

    def test_flush_horizon(self):
        wal = WriteAheadLog()
        wal.append(LogRecordType.BEGIN, "t1")
        wal.flush()
        wal.append(LogRecordType.COMMIT, "t1")
        assert len(wal.durable_records()) == 1
        wal.simulate_crash()
        assert len(wal.records) == 1

    def test_in_doubt_detection(self):
        wal = WriteAheadLog()
        wal.append(LogRecordType.PREPARE, "t1", flush=True)
        wal.append(LogRecordType.PREPARE, "t2", flush=True)
        wal.append(LogRecordType.COMMIT, "t2", flush=True)
        assert wal.in_doubt_transactions() == {"t1"}

    def test_coordinator_decisions(self):
        wal = WriteAheadLog()
        wal.append(LogRecordType.COORD_COMMIT, "g1", flush=True)
        wal.append(LogRecordType.COORD_ABORT, "g2", flush=True)
        wal.append(LogRecordType.COORD_COMMIT, "g3")  # not flushed
        wal.simulate_crash()
        decisions = wal.coordinator_decisions()
        assert decisions == {"g1": "commit", "g2": "abort"}


class TestLocalTransactions:
    def test_commit_keeps_changes(self):
        manager = LocalTransactionManager()
        table = make_table()
        txn = manager.begin()
        mutator = TxnMutator(manager, txn)
        mutator.insert(table, (1, "a"))
        manager.commit(txn)
        assert len(table) == 1
        assert txn.state is TxnState.COMMITTED

    def test_abort_undoes_insert(self):
        manager = LocalTransactionManager()
        table = make_table()
        txn = manager.begin()
        TxnMutator(manager, txn).insert(table, (1, "a"))
        manager.abort(txn)
        assert len(table) == 0

    def test_abort_undoes_delete(self):
        manager = LocalTransactionManager()
        table = make_table()
        rid = table.insert((1, "a"))
        txn = manager.begin()
        TxnMutator(manager, txn).delete(table, rid)
        manager.abort(txn)
        assert table.get(rid) == (1, "a")

    def test_abort_undoes_update(self):
        manager = LocalTransactionManager()
        table = make_table()
        rid = table.insert((1, "a"))
        txn = manager.begin()
        TxnMutator(manager, txn).update(table, rid, (1, "b"))
        manager.abort(txn)
        assert table.get(rid) == (1, "a")

    def test_abort_undoes_mixed_sequence_in_reverse(self):
        manager = LocalTransactionManager()
        table = make_table()
        rid = table.insert((1, "a"))
        txn = manager.begin()
        mutator = TxnMutator(manager, txn)
        mutator.update(table, rid, (1, "b"))
        rid2 = mutator.insert(table, (2, "c"))
        mutator.delete(table, rid)
        manager.abort(txn)
        assert table.get(rid) == (1, "a")
        assert rid2 not in table.rows
        assert len(table) == 1

    def test_locks_released_on_commit(self):
        manager = LocalTransactionManager()
        table = make_table()
        txn = manager.begin()
        TxnMutator(manager, txn).insert(table, (1, "a"))
        manager.commit(txn)
        # another txn can immediately lock exclusively
        txn2 = manager.begin()
        TxnMutator(manager, txn2, lock_timeout=0.05).insert(table, (2, "b"))
        manager.commit(txn2)

    def test_cannot_mutate_after_commit(self):
        manager = LocalTransactionManager()
        table = make_table()
        txn = manager.begin()
        mutator = TxnMutator(manager, txn)
        manager.commit(txn)
        with pytest.raises(TransactionError):
            mutator.insert(table, (1, "a"))

    def test_double_begin_same_id(self):
        manager = LocalTransactionManager()
        manager.begin("x")
        with pytest.raises(TransactionError):
            manager.begin("x")

    def test_abort_idempotent(self):
        manager = LocalTransactionManager()
        txn = manager.begin()
        manager.abort(txn)
        manager.abort(txn)  # no error
        assert manager.aborts == 1

    def test_failed_insert_not_logged_for_undo(self):
        manager = LocalTransactionManager()
        table = make_table()
        table.insert((1, "a"))
        txn = manager.begin()
        mutator = TxnMutator(manager, txn)
        with pytest.raises(IntegrityError):
            mutator.insert(table, (1, "dup"))
        mutator.insert(table, (2, "ok"))
        manager.abort(txn)
        assert len(table) == 1  # original row untouched


class TestTwoPhaseParticipant:
    def test_prepare_then_commit(self):
        manager = LocalTransactionManager()
        table = make_table()
        txn = manager.begin(global_id="G9")
        TxnMutator(manager, txn).insert(table, (1, "a"))
        assert manager.prepare(txn) is True
        assert txn.state is TxnState.PREPARED
        manager.commit_prepared(txn)
        assert len(table) == 1

    def test_prepare_then_abort(self):
        manager = LocalTransactionManager()
        table = make_table()
        txn = manager.begin(global_id="G9")
        TxnMutator(manager, txn).insert(table, (1, "a"))
        manager.prepare(txn)
        manager.abort_prepared(txn)
        assert len(table) == 0

    def test_prepare_forces_log(self):
        manager = LocalTransactionManager()
        txn = manager.begin(global_id="G1")
        manager.prepare(txn)
        durable = manager.wal.durable_records()
        assert any(
            r.record_type is LogRecordType.PREPARE and r.payload == ("G1",)
            for r in durable
        )

    def test_commit_prepared_requires_prepared_state(self):
        manager = LocalTransactionManager()
        txn = manager.begin()
        with pytest.raises(TransactionError):
            manager.commit_prepared(txn)

    def test_cannot_mutate_while_prepared(self):
        manager = LocalTransactionManager()
        table = make_table()
        txn = manager.begin(global_id="G1")
        mutator = TxnMutator(manager, txn)
        manager.prepare(txn)
        with pytest.raises(TransactionError):
            mutator.insert(table, (1, "a"))
