"""Observability tests: tracer, metrics, system wiring, EXPLAIN ANALYZE."""

import threading

import pytest

from repro import MyriadSystem
from repro.engine import ResultSet
from repro.net import MessageTrace
from repro.obs import (
    DISABLED,
    DISABLED_REPORT,
    NULL_SPAN,
    MetricsRegistry,
    Observability,
    Tracer,
    obs_of,
    percentile,
    render_explain_analyze,
)
from repro.query.executor import GlobalResult
from repro.query.localizer import Fetch
from repro.storage import Catalog
from repro.workloads import build_bank_sites, build_two_site_join

JOIN_SQL = (
    "SELECT lhs.k, rhs.val FROM lhs, rhs "
    "WHERE lhs.k = rhs.k AND lhs.flt < 0.5"
)


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_nesting_builds_parent_child_tree(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("mid") as mid:
                with tracer.span("leaf") as leaf:
                    pass
        assert outer.parent is None
        assert mid.parent is outer
        assert leaf.parent is mid
        assert outer.children == [mid]
        assert mid.children == [leaf]
        assert list(tracer.roots) == [outer]

    def test_wall_clock_recorded(self):
        tracer = Tracer()
        with tracer.span("op") as span:
            pass
        assert span.wall_s >= 0.0
        assert span.sim_s is None
        span.set_sim(0.25)
        assert span.sim_s == 0.25

    def test_tags_at_creation_and_later(self):
        tracer = Tracer()
        with tracer.span("op", site="a") as span:
            span.tag(rows=3)
        assert span.tags == {"site": "a", "rows": 3}

    def test_exception_recorded_and_propagated(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("op") as span:
                raise ValueError("boom")
        assert span.error == "ValueError: boom"
        # the stack is unwound: a new span is a fresh root
        with tracer.span("next") as span2:
            pass
        assert span2.parent is None
        assert len(tracer.roots) == 2

    def test_disabled_tracer_is_noop(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("op", site="a")
        assert span is NULL_SPAN
        with span as inner:
            inner.tag(x=1).set_sim(2.0)
        assert len(tracer.roots) == 0

    def test_max_roots_evicts_oldest(self):
        tracer = Tracer(max_roots=3)
        for index in range(5):
            with tracer.span(f"op{index}"):
                pass
        assert [root.name for root in tracer.roots] == ["op2", "op3", "op4"]

    def test_eviction_is_counted_not_silent(self):
        tracer = Tracer(max_roots=3)
        for index in range(5):
            with tracer.span(f"op{index}"):
                pass
        assert tracer.dropped == 2
        text = tracer.render()
        assert "trace truncated: 2 older root spans dropped" in text
        assert "3-root buffer" in text

    def test_no_eviction_no_truncation_banner(self):
        tracer = Tracer(max_roots=8)
        with tracer.span("only"):
            pass
        assert tracer.dropped == 0
        assert "truncated" not in tracer.render()

    def test_clear_resets_drop_counter(self):
        tracer = Tracer(max_roots=1)
        for index in range(3):
            with tracer.span(f"op{index}"):
                pass
        assert tracer.dropped == 2
        tracer.clear()
        assert tracer.dropped == 0
        assert len(tracer.roots) == 0

    def test_eviction_increments_spans_dropped_metric(self):
        obs = Observability(max_roots=2)
        for index in range(5):
            with obs.span(f"op{index}"):
                pass
        assert obs.tracer.dropped == 3
        assert obs.metrics.counter("obs.spans_dropped") == 3
        report = obs.render()
        assert "trace truncated: 3 older root spans dropped" in report
        assert "obs.spans_dropped" in report

    def test_find_searches_all_roots_recursively(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("fetch"):
                pass
            with tracer.span("fetch"):
                pass
        with tracer.span("fetch"):
            pass
        assert len(tracer.find("fetch")) == 3

    def test_render_shows_tree_and_tags(self):
        tracer = Tracer()
        with tracer.span("query", federation="corp"):
            with tracer.span("fetch") as inner:
                inner.set_sim(0.001)
        text = tracer.render()
        assert "query [federation=corp]" in text
        assert "  fetch" in text
        assert "sim=1.000ms" in text

    def test_threads_get_independent_stacks(self):
        tracer = Tracer()
        results = {}

        def worker():
            with tracer.span("thread-op") as span:
                results["parent"] = span.parent

        with tracer.span("main-op"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # the worker's span must not nest under the main thread's open span
        assert results["parent"] is None
        assert len(tracer.roots) == 2


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counters_with_labels(self):
        metrics = MetricsRegistry()
        metrics.inc("rows", 5, site="a")
        metrics.inc("rows", 2, site="a")
        metrics.inc("rows", 7, site="b")
        assert metrics.counter("rows", site="a") == 5 + 2
        assert metrics.counter("rows", site="b") == 7
        assert metrics.counter_total("rows") == 14
        assert metrics.counter("rows", site="nope") == 0.0

    def test_gauges(self):
        metrics = MetricsRegistry()
        assert metrics.gauge("depth") is None
        metrics.set_gauge("depth", 3)
        metrics.set_gauge("depth", 5)
        assert metrics.gauge("depth") == 5

    def test_histogram_summary_percentiles(self):
        metrics = MetricsRegistry()
        for value in range(1, 101):  # 1..100
            metrics.observe("lat", float(value))
        summary = metrics.histogram_summary("lat")
        assert summary["count"] == 100
        assert summary["min"] == 1
        assert summary["max"] == 100
        assert summary["mean"] == pytest.approx(50.5)
        assert summary["p50"] == 50
        assert summary["p95"] == 95
        assert summary["p99"] == 99

    def test_histogram_missing_series_is_none(self):
        assert MetricsRegistry().histogram_summary("nope") is None

    def test_percentile_nearest_rank(self):
        assert percentile([10.0], 99.0) == 10.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == 2.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 99.0) == 4.0

    def test_percentile_empty_list_raises(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50.0)

    def test_percentile_single_sample_every_pct(self):
        for pct in (0.0, 1.0, 50.0, 99.0, 100.0):
            assert percentile([7.5], pct) == 7.5

    def test_percentile_100_is_the_maximum(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0]
        assert percentile(values, 100.0) == 5.0
        assert percentile(values, 0.0) == 1.0

    def test_percentile_clamps_out_of_range_pct(self):
        values = [1.0, 2.0, 3.0]
        assert percentile(values, -10.0) == percentile(values, 0.0)
        assert percentile(values, 250.0) == 3.0

    def test_histogram_summary_single_sample(self):
        metrics = MetricsRegistry()
        metrics.observe("lat", 42.0)
        summary = metrics.histogram_summary("lat")
        assert summary["count"] == 1
        assert summary["min"] == summary["max"] == summary["mean"] == 42.0
        assert summary["p50"] == summary["p95"] == summary["p99"] == 42.0

    def test_disabled_registry_records_nothing(self):
        metrics = MetricsRegistry(enabled=False)
        metrics.inc("c")
        metrics.set_gauge("g", 1)
        metrics.observe("h", 1.0)
        snap = metrics.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_reset_clears_everything(self):
        metrics = MetricsRegistry()
        metrics.inc("c")
        metrics.observe("h", 1.0)
        metrics.reset()
        assert metrics.counter_total("c") == 0
        assert metrics.histogram_summary("h") is None

    def test_render_groups_by_kind(self):
        metrics = MetricsRegistry()
        metrics.inc("msgs", 3, purpose="query")
        metrics.set_gauge("active", 2)
        metrics.observe("lat", 0.5)
        text = metrics.render()
        assert "-- counters --" in text
        assert "msgs{purpose=query}" in text
        assert "-- gauges --" in text
        assert "-- histograms --" in text

    def test_render_empty(self):
        assert "(no metrics recorded)" in MetricsRegistry().render()


# ---------------------------------------------------------------------------
# Observability handle + wiring helpers
# ---------------------------------------------------------------------------


class TestObservabilityHandle:
    def test_disabled_singleton(self):
        assert DISABLED.span("x") is NULL_SPAN
        DISABLED.metrics.inc("x")
        assert DISABLED.metrics.counter_total("x") == 0

    def test_obs_of_network_without_handle(self):
        class Bare:
            obs = None

        assert obs_of(Bare()) is DISABLED
        assert obs_of(object()) is DISABLED

    def test_reset_clears_both(self):
        obs = Observability()
        with obs.span("op"):
            obs.metrics.inc("c")
        obs.reset()
        assert len(obs.tracer.roots) == 0
        assert obs.metrics.counter_total("c") == 0


# ---------------------------------------------------------------------------
# System-level wiring
# ---------------------------------------------------------------------------


class TestSystemObservability:
    def test_query_produces_spans_and_metrics(self):
        system = build_two_site_join(40, 40)
        result = system.query("synth", JOIN_SQL)
        assert len(result.rows) > 0

        # span tree: query.execute → execute.stage → execute.fetch
        (root,) = system.tracer.find("query.execute")
        assert root.parent is None
        assert root.find("query.plan")
        stages = root.find("execute.stage")
        assert stages
        fetches = root.find("execute.fetch")
        assert len(fetches) == len(result.plan.fetches)
        for span in fetches:
            assert span.sim_s is not None and span.sim_s > 0
        assert root.find("execute.residual")

        # metrics: per-site shipping, per-purpose messages, query counters
        metrics = system.metrics
        assert metrics.counter("query.executed", strategy="cost") == 1
        assert metrics.counter("site.rows_shipped", site="s1") > 0
        assert metrics.counter("site.rows_shipped", site="s2") > 0
        assert metrics.counter_total("site.bytes_shipped") > 0
        assert metrics.counter("net.messages", purpose="query") > 0
        assert metrics.counter("net.messages", purpose="result") > 0
        summary = metrics.histogram_summary("query.sim_elapsed_s")
        assert summary["count"] == 1
        assert summary["max"] == pytest.approx(result.trace.elapsed_s)

    def test_transaction_metrics_and_spans(self):
        system = build_bank_sites(2, 4)
        txn = system.begin_transaction()
        txn.execute(
            "b0", "UPDATE account SET balance = balance - 10 WHERE acct = 0"
        )
        txn.execute(
            "b1", "UPDATE account SET balance = balance + 10 WHERE acct = 4"
        )
        txn.commit()

        metrics = system.metrics
        assert metrics.counter("txn.begun") == 1
        assert metrics.counter("txn.outcomes", outcome="committed") == 1
        (commit,) = system.tracer.find("txn.commit")
        assert commit.find("txn.prepare")
        decides = commit.find("txn.decide")
        assert [s.tags["decision"] for s in decides] == ["commit"]
        delivers = commit.find("txn.deliver")
        assert len(delivers) == 2
        assert commit.sim_s is not None and commit.sim_s > 0

    def test_disabled_observability_records_nothing(self):
        system = build_two_site_join(20, 20, query_timeout=None)
        system.obs.enabled = False
        system.tracer.enabled = False
        system.metrics.enabled = False
        result = system.query("synth", JOIN_SQL)
        assert len(result.rows) >= 0
        assert len(system.tracer.roots) == 0
        assert system.metrics.counter_total("query.executed") == 0

    def test_observability_false_at_construction(self):
        system = MyriadSystem(observability=False)
        assert not system.obs.enabled
        assert system.obs.span("x") is NULL_SPAN
        assert system.network.obs is system.obs

    def test_report_renders_metrics_and_traces(self):
        system = build_two_site_join(20, 20)
        system.query("synth", JOIN_SQL)
        report = system.observability_report()
        assert "== metrics ==" in report
        assert "== traces (most recent last) ==" in report
        assert "query.execute" in report
        assert "site.rows_shipped" in report

    def test_dropped_messages_are_counted(self):
        system = build_two_site_join(20, 20)
        faults = system.inject_faults(seed=3)
        faults.drop_next(1, purpose="query")
        # The executor retries the dropped fetch, so the query succeeds —
        # but the loss is still counted.
        system.query("synth", JOIN_SQL)
        assert system.metrics.counter_total("net.dropped") == 1
        assert system.metrics.counter_total("query.fetch_retries") == 1

    def test_deadlock_monitor_sweep_metrics(self):
        from repro.txn.deadlock import GlobalDeadlockMonitor

        system = build_bank_sites(2, 4)
        monitor = GlobalDeadlockMonitor(system.gateways)
        assert monitor.obs is system.obs
        monitor.check_once()
        assert system.metrics.counter("deadlock.sweeps") == 1
        assert system.metrics.counter_total("deadlock.victims") == 0


# ---------------------------------------------------------------------------
# Disabled handle: explicit markers, never silently-empty output
# ---------------------------------------------------------------------------


class TestDisabledMarkers:
    def test_report_returns_explicit_marker(self):
        system = build_two_site_join(10, 10, observability=False)
        system.query("synth", JOIN_SQL)
        report = system.observability_report()
        assert report == DISABLED_REPORT
        assert "observability disabled" in report

    def test_prometheus_export_marks_disabled(self):
        from repro.obs.export import DISABLED_MARKER, metrics_to_prometheus

        assert metrics_to_prometheus(DISABLED.metrics) == DISABLED_MARKER
        assert "disabled" in DISABLED_MARKER

    def test_json_export_marks_disabled(self):
        import json

        from repro.obs.export import metrics_to_json

        assert json.loads(metrics_to_json(DISABLED.metrics)) == {
            "disabled": True
        }

    def test_chrome_trace_marks_disabled(self):
        from repro.obs.export import spans_to_chrome_trace

        for clock in ("wall", "sim"):
            trace = spans_to_chrome_trace(DISABLED.tracer, clock=clock)
            assert trace["traceEvents"] == []
            assert trace["otherData"]["disabled"] is True

    def test_dump_debug_bundle_raises_clear_error(self, tmp_path):
        from repro.errors import MyriadError

        system = build_two_site_join(10, 10, observability=False)
        with pytest.raises(MyriadError, match="observability is disabled"):
            system.dump_debug_bundle(tmp_path / "bundle")
        assert not (tmp_path / "bundle" / "MANIFEST.json").exists()


# ---------------------------------------------------------------------------
# EXPLAIN ANALYZE
# ---------------------------------------------------------------------------


class TestExplainAnalyze:
    def test_cost_plan_estimates_and_actuals(self):
        system = build_two_site_join(60, 60)
        result = system.query("synth", JOIN_SQL, optimizer="cost")
        text = result.explain_analyze()
        assert "EXPLAIN ANALYZE GlobalPlan[cost]" in text
        # the cost optimizer annotates a whole-plan estimate and per-fetch
        # estimates; execution fills the actuals
        assert "plan: estimated cost" in text
        assert "?" not in text.split("\n")[1]
        assert "est:    rows=" in text
        assert "actual: rows=" in text
        assert "(not executed)" not in text
        assert "residual:" in text
        assert f"result: {len(result.rows)} rows" in text

    def test_simple_plan_also_gets_estimates(self):
        system = build_two_site_join(60, 60)
        result = system.query("synth", JOIN_SQL, optimizer="simple")
        text = result.explain_analyze()
        assert "EXPLAIN ANALYZE GlobalPlan[simple]" in text
        # ship-all has no whole-plan cost estimate…
        assert "plan: estimated cost ?" in text
        # …but each fetch still carries est rows/bytes/time
        for line in text.split("\n"):
            if line.strip().startswith("est:"):
                assert "rows=?" not in line
                assert "bytes=?" not in line
                assert "time=?" not in line
        assert "actual: rows=" in text

    def test_actuals_match_trace_totals(self):
        system = build_two_site_join(40, 40)
        result = system.query("synth", JOIN_SQL, optimizer="simple")
        total_bytes = sum(a.bytes for a in result.fetch_actuals.values())
        total_msgs = sum(a.messages for a in result.fetch_actuals.values())
        assert total_bytes == result.trace.total_bytes
        assert total_msgs == result.trace.message_count
        fetched = sum(a.rows for a in result.fetch_actuals.values())
        assert fetched == result.fetched_rows

    def test_zero_fetch_fully_local_query(self):
        # A constant query localises to zero fetches: the report must not
        # fabricate fetch sections and the totals must degrade gracefully.
        system = build_two_site_join(10, 10)
        result = system.query("synth", "SELECT 1 + 2")
        assert result.rows == [(3,)]
        assert result.plan.fetches == []
        text = result.explain_analyze()
        assert "est:" not in text
        assert "actual:" not in text
        assert "0 messages, 0 bytes" in text
        assert "result: 1 rows (0 fetched from 0 fragments)" in text

    def test_retry_after_dropped_fetch_reports_full_actuals(self):
        # First attempt dies on a dropped fetch message; the retried query
        # must produce a complete report with no stale "(not executed)".
        system = build_two_site_join(20, 20)
        system.processor("synth").executor.fetch_retry_limit = 0
        system.inject_faults(seed=5).drop_next(1, purpose="query")
        with pytest.raises(Exception):
            system.query("synth", JOIN_SQL)
        result = system.query("synth", JOIN_SQL)
        text = result.explain_analyze()
        assert "(not executed)" not in text
        assert text.count("actual: rows=") == len(result.plan.fetches)
        fetched = sum(a.rows for a in result.fetch_actuals.values())
        assert fetched == result.fetched_rows

    def test_unannotated_estimates_render_as_question_marks(self):
        # A plan whose fetches carry no est_* annotations (and that never
        # executed) renders "?" estimates and "(not executed)" actuals.
        system = build_two_site_join(10, 10)
        plan = system.processor("synth").plan(JOIN_SQL, optimizer="cost")
        plan.estimated_cost_s = None
        for fetch in plan.fetches:
            fetch.est_rows = fetch.est_bytes = fetch.est_cost_s = None
        result = GlobalResult(
            columns=[], rows=[], plan=plan, trace=MessageTrace()
        )
        text = render_explain_analyze(result)
        assert "plan: estimated cost ?" in text
        assert text.count("est:    rows=? bytes=? time=?") == len(plan.fetches)
        assert text.count("actual: (not executed)") == len(plan.fetches)
        assert "result: 0 rows (0 fetched from" in text


# ---------------------------------------------------------------------------
# Fragment materialisation bugfix
# ---------------------------------------------------------------------------


class TestRegisterFragmentDuplicates:
    def _executor_and_fetch(self):
        system = build_two_site_join(10, 10)
        executor = system.processor("synth").executor
        fetch = Fetch(
            index=0,
            site="s1",
            export="left_rel",
            binding="lhs",
            temp_name="__frag_lhs",
            columns=["k", "flt"],
        )
        return executor, fetch

    def test_duplicate_pk_rows_fall_back_to_keyless(self):
        executor, fetch = self._executor_and_fetch()
        catalog = Catalog("test")
        shipped = ResultSet(["k", "flt"], [(1, 0.5), (1, 0.6), (2, 0.7)])
        executor._register_fragment(catalog, fetch, shipped)
        table = catalog.get_table("__frag_lhs")
        assert len(table) == 3
        assert table.schema.primary_key == []

    def test_null_pk_rows_fall_back_to_keyless(self):
        executor, fetch = self._executor_and_fetch()
        catalog = Catalog("test")
        shipped = ResultSet(["k", "flt"], [(None, 0.5), (2, 0.7)])
        executor._register_fragment(catalog, fetch, shipped)
        table = catalog.get_table("__frag_lhs")
        assert len(table) == 2
        assert table.schema.primary_key == []

    def test_unique_pk_rows_keep_the_key(self):
        executor, fetch = self._executor_and_fetch()
        catalog = Catalog("test")
        shipped = ResultSet(["k", "flt"], [(1, 0.5), (2, 0.7)])
        executor._register_fragment(catalog, fetch, shipped)
        table = catalog.get_table("__frag_lhs")
        assert len(table) == 2
        assert [k.lower() for k in table.schema.primary_key] == ["k"]
