"""Keep the examples runnable: execute each script's main() and sanity-check
its output."""

import contextlib
import io
import pathlib
import runpy

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

CASES = [
    ("quickstart.py", ["optimizer comparison", "GlobalPlan[cost]"]),
    (
        "university_federation.py",
        ["dean's list", "staff directory", "GlobalPlan"],
    ),
    (
        "global_transactions.py",
        ["2PC", "conserved", "oracle wait-for graph sees cycles"],
    ),
    ("schema_browser_repl.py", ["myriad>", "global transaction"]),
    ("optimizer_study.py", ["selection pushdown", "semijoin"]),
    ("multi_federation.py", ["HR federation", "analytics federation"]),
    (
        "workflow_saga.py",
        ["committed", "budget released", "compensated:reserve_budget"],
    ),
]


@pytest.mark.parametrize("script,expected", CASES)
def test_example_runs(script, expected):
    path = EXAMPLES / script
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        runpy.run_path(str(path), run_name="__main__")
    output = buffer.getvalue()
    for snippet in expected:
        assert snippet in output, f"{script}: missing {snippet!r}"
