"""Gateway tests: exports, translation, timeouts, DML mapping, 2PC proxy."""

import pytest

from repro.errors import GatewayError, GatewayTimeout
from repro.gateway import Gateway
from repro.localdb import OracleDBMS
from repro.net import MessageTrace, Network


@pytest.fixture
def setup():
    net = Network()
    ora = OracleDBMS("ora", lock_timeout=1.0)
    ora.execute(
        "CREATE TABLE employees (eno INTEGER PRIMARY KEY, ename VARCHAR2(30), "
        "salary NUMBER, dno INTEGER, notes VARCHAR2(40))"
    )
    ora.execute(
        "INSERT INTO employees VALUES "
        "(1, 'KING', 5000, 10, 'ceo'), (2, 'BLAKE', 2850, 30, NULL), "
        "(3, 'CLARK', 2450, 10, 'x')"
    )
    gateway = Gateway(ora, net)
    gateway.export_table(
        "employees",
        "emp",
        {"empno": "eno", "name": "ename", "sal": "salary", "deptno": "dno"},
    )
    return net, ora, gateway


class TestExports:
    def test_unexported_columns_hidden(self, setup):
        _, _, gateway = setup
        schema = gateway.export_relation_schema("emp")
        assert "notes" not in [c.lower() for c in schema.column_names]

    def test_export_schema_preserves_pk(self, setup):
        _, _, gateway = setup
        assert gateway.export_relation_schema("emp").primary_key == ["empno"]

    def test_pk_dropped_if_not_exported(self, setup):
        _, _, gateway = setup
        gateway.export_table("employees", "emp_nopk", {"name": "ename"})
        assert gateway.export_relation_schema("emp_nopk").primary_key == []

    def test_export_with_predicate(self, setup):
        _, _, gateway = setup
        gateway.export_table(
            "employees", "rich", {"name": "ename"}, predicate="salary >= 2800"
        )
        result = gateway.execute_query("SELECT name FROM rich")
        assert sorted(r[0] for r in result.rows) == ["BLAKE", "KING"]

    def test_duplicate_export_name(self, setup):
        _, _, gateway = setup
        with pytest.raises(GatewayError):
            gateway.export_table("employees", "emp")

    def test_export_unknown_column(self, setup):
        _, _, gateway = setup
        with pytest.raises(Exception):
            gateway.export_table("employees", "bad", {"x": "no_such"})

    def test_querying_unexported_relation_fails(self, setup):
        _, _, gateway = setup
        # 'employees' itself is not exported, only 'emp'
        with pytest.raises(Exception):
            gateway.execute_query("SELECT * FROM employees_raw")

    def test_export_names(self, setup):
        _, _, gateway = setup
        assert gateway.export_names() == ["emp"]


class TestQueryShipping:
    def test_column_renaming(self, setup):
        _, _, gateway = setup
        result = gateway.execute_query(
            "SELECT empno, name FROM emp WHERE sal > 2900"
        )
        assert result.columns == ["empno", "name"]
        assert result.rows == [(1, "KING")]

    def test_traffic_accounting(self, setup):
        _, _, gateway = setup
        trace = MessageTrace()
        gateway.execute_query("SELECT name FROM emp", trace=trace)
        assert trace.message_count == 2  # query there, result back
        assert trace.total_bytes > 0
        assert trace.elapsed_s > 0

    def test_value_normalisation(self, setup):
        _, _, gateway = setup
        result = gateway.execute_query("SELECT sal FROM emp WHERE empno = 1")
        value = result.rows[0][0]
        assert isinstance(value, int)  # Decimal 5000 → int

    def test_limit_travels_through_oracle_dialect(self, setup):
        _, _, gateway = setup
        result = gateway.execute_query("SELECT name FROM emp LIMIT 2")
        assert len(result) == 2

    def test_aggregates_run_locally(self, setup):
        _, _, gateway = setup
        result = gateway.execute_query(
            "SELECT deptno, COUNT(*) AS n FROM emp GROUP BY deptno"
        )
        assert dict(result.rows) == {10: 2, 30: 1}

    def test_export_stats(self, setup):
        _, _, gateway = setup
        stats = gateway.export_stats("emp")
        assert stats.row_count == 3
        assert stats.column("deptno").distinct == 2
        # stats use export column names, not local ones
        assert stats.column("dno") is None

    def test_export_stats_cached_until_dml(self, setup):
        _, ora, gateway = setup
        assert gateway.export_stats("emp").row_count == 3
        ora.execute("INSERT INTO employees VALUES (9, 'NEW', 1, 10, NULL)")
        assert gateway.export_stats("emp").row_count == 3  # cached
        assert gateway.export_stats("emp", refresh=True).row_count == 4

    def test_export_stats_refresh_bumps_stats_version(self, setup):
        # regression: refresh=True replaced the cached statistics without
        # bumping stats_version, so plans compiled from the superseded
        # statistics kept being served from the plan cache
        _, ora, gateway = setup
        gateway.export_stats("emp")
        before = gateway.stats_version
        gateway.export_stats("emp", refresh=True)
        assert gateway.stats_version == before + 1
        # a refresh that computed nothing new still moved the version: the
        # cached value it replaced could have driven a compiled plan
        gateway.export_stats("emp", refresh=True)
        assert gateway.stats_version == before + 2

    def test_export_stats_first_computation_does_not_bump(self, setup):
        _, _, gateway = setup
        before = gateway.stats_version
        gateway.export_stats("emp")
        gateway.export_stats("emp")  # cached: no recomputation either
        assert gateway.stats_version == before

    def test_export_stats_cache_miss_single_flight(self, setup):
        # regression: concurrent first reads each ran the export view and
        # raced their results into the cache
        import threading
        import time

        _, ora, gateway = setup
        scans = []
        original = ora.execute

        def counted(*args, **kwargs):
            scans.append(threading.get_ident())
            time.sleep(0.02)  # widen the race window
            return original(*args, **kwargs)

        ora.execute = counted
        try:
            results = []
            threads = [
                threading.Thread(
                    target=lambda: results.append(gateway.export_stats("emp"))
                )
                for _ in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            ora.execute = original
        assert len(scans) == 1  # one view scan served every caller
        assert len(results) == 8
        assert all(stats.row_count == 3 for stats in results)


class TestTimeouts:
    def test_timeout_becomes_gateway_timeout(self, setup):
        _, ora, gateway = setup
        blocker = ora.connect()
        blocker.begin()
        blocker.execute("UPDATE employees SET salary = 1 WHERE eno = 1")
        # Autocommit reads run on an MVCC snapshot: no lock wait, and the
        # uncommitted local write stays invisible.
        result = gateway.execute_query("SELECT * FROM emp", timeout=0.05)
        assert len(result) == 3
        # A transactional (2PL) read still waits and times out — the
        # paper's presumed-deadlock signal.
        gateway.begin("G-t")
        with pytest.raises(GatewayTimeout) as exc:
            gateway.execute_query(
                "SELECT * FROM emp", timeout=0.05, global_id="G-t"
            )
        assert exc.value.site == "ora"
        assert gateway.timeouts == 1
        gateway.abort("G-t")
        blocker.rollback()

    def test_no_timeout_when_unblocked(self, setup):
        _, _, gateway = setup
        result = gateway.execute_query("SELECT * FROM emp", timeout=0.05)
        assert len(result) == 3


class TestTransactionBranches:
    def test_begin_execute_commit(self, setup):
        _, ora, gateway = setup
        trace = MessageTrace()
        gateway.begin("G1", trace)
        count = gateway.execute_update(
            "UPDATE emp SET sal = sal + 1 WHERE deptno = 10", "G1", trace
        )
        assert count == 2
        assert gateway.prepare("G1", trace) is True
        gateway.commit("G1", trace)
        result = gateway.execute_query("SELECT sal FROM emp WHERE empno = 1")
        assert result.rows[0][0] == 5001

    def test_abort_branch_rolls_back(self, setup):
        _, _, gateway = setup
        gateway.begin("G1")
        gateway.execute_update("DELETE FROM emp WHERE deptno = 10", "G1")
        gateway.abort("G1")
        assert len(gateway.execute_query("SELECT * FROM emp")) == 3

    def test_update_through_column_mapping(self, setup):
        _, ora, gateway = setup
        gateway.begin("G1")
        gateway.execute_update(
            "UPDATE emp SET sal = 99 WHERE name = 'CLARK'", "G1"
        )
        gateway.commit("G1")
        # verify against the LOCAL schema columns
        value = ora.execute(
            "SELECT salary FROM employees WHERE ename = 'CLARK'"
        ).scalar()
        assert float(value) == 99.0

    def test_insert_through_export(self, setup):
        _, ora, gateway = setup
        gateway.begin("G1")
        gateway.execute_update(
            "INSERT INTO emp (empno, name, sal, deptno) VALUES (7, 'NEW', 1000, 30)",
            "G1",
        )
        gateway.commit("G1")
        assert (
            ora.execute("SELECT ename FROM employees WHERE eno = 7").scalar()
            == "NEW"
        )

    def test_unknown_branch_rejected(self, setup):
        _, _, gateway = setup
        with pytest.raises(GatewayError):
            gateway.execute_update("DELETE FROM emp", "GHOST")

    def test_duplicate_branch_rejected(self, setup):
        _, _, gateway = setup
        gateway.begin("G1")
        with pytest.raises(GatewayError):
            gateway.begin("G1")
        gateway.abort("G1")

    def test_abort_unknown_branch_is_noop(self, setup):
        _, _, gateway = setup
        gateway.abort("GHOST")
        gateway.commit("GHOST")

    def test_2pc_message_pattern(self, setup):
        _, _, gateway = setup
        trace = MessageTrace()
        gateway.begin("G1", trace)
        gateway.prepare("G1", trace)
        gateway.commit("G1", trace)
        purposes = [record.purpose for record in trace.records]
        assert purposes == ["begin", "ack", "prepare", "vote", "commit", "ack"]


class TestWaitForEdges:
    def test_edges_use_global_ids(self, setup):
        import threading
        import time

        _, ora, gateway = setup
        gateway.begin("G_HOLDER")
        gateway.execute_update(
            "UPDATE emp SET sal = sal WHERE empno = 1", "G_HOLDER"
        )

        done = threading.Event()

        def blocked_local():
            session = ora.connect()
            session.lock_timeout = 0.5
            session.begin()
            try:
                session.execute("UPDATE employees SET salary = 2 WHERE eno = 2")
            except Exception:
                pass
            finally:
                session.rollback()
                done.set()

        thread = threading.Thread(target=blocked_local)
        thread.start()
        time.sleep(0.1)
        edges = gateway.wait_for_edges()
        assert any(holder == "G_HOLDER" for _, holder in edges)
        done.wait(2)
        thread.join()
        gateway.abort("G_HOLDER")
