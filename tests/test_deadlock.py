"""Global deadlock detection tests: oracle WFG detector + timeout policy."""

import threading
import time

import pytest

from repro.txn import TimeoutPolicy, WaitForGraphDetector
from repro.workloads import build_bank_sites, run_contention, total_balance


class TestTimeoutPolicy:
    def test_describe(self):
        policy = TimeoutPolicy(0.5)
        assert "0.5" in policy.describe()


class TestWaitForGraphDetector:
    def test_no_edges_no_cycles(self):
        bank = build_bank_sites(2, 2)
        detector = WaitForGraphDetector(bank.gateways)
        assert detector.global_edges() == []
        assert detector.find_cycles() == []
        assert detector.deadlocked_transactions() == set()

    def test_detects_cross_site_cycle(self):
        """The canonical global deadlock: neither site sees a local cycle."""
        bank = build_bank_sites(2, 2, query_timeout=5.0)
        detector = WaitForGraphDetector(bank.gateways)

        t1 = bank.begin_transaction("G_ONE")
        t2 = bank.begin_transaction("G_TWO")
        t1.execute("b0", "UPDATE account SET balance = 1 WHERE acct = 0")
        t2.execute("b1", "UPDATE account SET balance = 1 WHERE acct = 2")

        results = []

        def t1_wants_b1():
            try:
                t1.execute(
                    "b1", "UPDATE account SET balance = 2 WHERE acct = 3",
                    timeout=1.5,
                )
                results.append("t1-ok")
            except Exception:
                results.append("t1-aborted")

        def t2_wants_b0():
            try:
                t2.execute(
                    "b0", "UPDATE account SET balance = 2 WHERE acct = 1",
                    timeout=1.5,
                )
                results.append("t2-ok")
            except Exception:
                results.append("t2-aborted")

        threads = [
            threading.Thread(target=t1_wants_b1),
            threading.Thread(target=t2_wants_b0),
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.3)  # both should now be waiting
        cycles = detector.find_cycles()
        deadlocked = detector.deadlocked_transactions()
        victims = detector.choose_victims()
        for thread in threads:
            thread.join()
        # Clean up whatever survived.
        for txn in (t1, t2):
            try:
                txn.abort()
            except Exception:
                pass

        assert deadlocked == {"G_ONE", "G_TWO"}
        assert len(cycles) >= 1
        assert len(victims) >= 1
        assert set(victims) <= {"G_ONE", "G_TWO"}
        # The timeout policy fired for at least one of them.
        assert "t1-aborted" in results or "t2-aborted" in results

    def test_victim_choice_deterministic(self):
        bank = build_bank_sites(2, 2)
        detector = WaitForGraphDetector(bank.gateways)
        # Synthesise a cycle by monkeypatching edges.
        detector.global_edges = lambda: [("G1", "G2"), ("G2", "G1")]
        assert detector.choose_victims() == detector.choose_victims()

    def test_distinct_cycles_same_node_set_not_collapsed(self):
        """Regression: dedup by frozenset collapsed A→B→C→A with A→C→B→A."""
        bank = build_bank_sites(2, 2)
        detector = WaitForGraphDetector(bank.gateways)
        detector.global_edges = lambda: [
            ("A", "B"), ("B", "C"), ("C", "A"),
            ("A", "C"), ("C", "B"), ("B", "A"),
        ]
        cycles = detector.find_cycles()
        # Complete digraph on 3 nodes: three 2-cycles + two 3-cycles.
        assert len([c for c in cycles if len(c) == 2]) == 3
        assert len([c for c in cycles if len(c) == 3]) == 2

    def test_rotations_of_one_cycle_counted_once(self):
        bank = build_bank_sites(2, 2)
        detector = WaitForGraphDetector(bank.gateways)
        detector.global_edges = lambda: [("A", "B"), ("B", "C"), ("C", "A")]
        assert len(detector.find_cycles()) == 1


class TestMonitorCycleAccounting:
    def test_check_once_counts_each_cycle(self):
        """Regression: cycles_seen incremented once per round, not per cycle."""
        from repro.txn import GlobalDeadlockMonitor

        bank = build_bank_sites(2, 2)
        monitor = GlobalDeadlockMonitor(bank.gateways)
        monitor.detector.global_edges = lambda: [
            ("G1", "G2"), ("G2", "G1"),
            ("G3", "G4"), ("G4", "G3"),
        ]
        killed = monitor.check_once()
        assert monitor.cycles_seen == 2
        assert len(killed) == 2  # one victim per cycle


class TestContentionHarness:
    def test_money_conserved_under_contention(self):
        bank = build_bank_sites(2, 4)
        result = run_contention(
            bank, 2, 4,
            workers=3,
            transactions_per_worker=6,
            timeout_s=0.1,
            think_time_s=0.005,
            seed=9,
        )
        assert result.attempted == 18
        assert total_balance(bank) == pytest.approx(2 * 4 * 1000.0)

    def test_outcome_classification_sums(self):
        bank = build_bank_sites(2, 3)
        result = run_contention(
            bank, 2, 3,
            workers=2,
            transactions_per_worker=5,
            timeout_s=0.1,
            seed=4,
        )
        assert (
            result.committed
            + result.timeout_aborts
            + result.deadlock_aborts
            + result.other_aborts
            == 10
        )
        assert (
            result.false_timeout_aborts + result.true_timeout_aborts
            == result.timeout_aborts
        )

    def test_generous_timeout_mostly_commits(self):
        bank = build_bank_sites(2, 8)
        result = run_contention(
            bank, 2, 8,
            workers=2,
            transactions_per_worker=5,
            hotspot_probability=0.0,  # spread load: few conflicts
            timeout_s=2.0,
            seed=2,
        )
        assert result.committed >= 8

    def test_throughput_property(self):
        bank = build_bank_sites(2, 4)
        result = run_contention(
            bank, 2, 4, workers=2, transactions_per_worker=3, timeout_s=0.5
        )
        assert result.wall_seconds > 0
        assert result.throughput >= 0
