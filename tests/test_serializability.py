"""Stronger serializability checks: read-modify-write under concurrency.

Money-conservation under blind writes is necessary but weak; these tests do
*read-modify-write* transfers (SELECT the balance, compute, UPDATE with the
computed literal), which break under non-serializable interleavings (lost
updates).  Strict 2PL at every component plus 2PC must prevent that.
"""

import random
import threading

import pytest

from repro.errors import MyriadError, TransactionAborted, TwoPhaseCommitError
from repro.workloads import build_bank_sites, total_balance


def read_modify_write_transfer(system, from_site, from_acct, to_site, to_acct,
                               amount, timeout):
    """Transfer via SELECT-then-UPDATE (lost-update prone without 2PL)."""
    txn = system.begin_transaction()
    try:
        source_balance = txn.execute(
            from_site,
            f"SELECT balance FROM account WHERE acct = {from_acct}",
            timeout=timeout,
        ).scalar()
        target_balance = txn.execute(
            to_site,
            f"SELECT balance FROM account WHERE acct = {to_acct}",
            timeout=timeout,
        ).scalar()
        txn.execute(
            from_site,
            f"UPDATE account SET balance = {float(source_balance) - amount} "
            f"WHERE acct = {from_acct}",
            timeout=timeout,
        )
        txn.execute(
            to_site,
            f"UPDATE account SET balance = {float(target_balance) + amount} "
            f"WHERE acct = {to_acct}",
            timeout=timeout,
        )
        txn.commit()
        return True
    except (TransactionAborted, TwoPhaseCommitError):
        return False
    except MyriadError:
        txn.abort()
        return False


class TestReadModifyWrite:
    def test_sequential_rmw_transfers(self):
        bank = build_bank_sites(3, 2, query_timeout=2.0)
        rng = random.Random(5)
        committed = 0
        for _ in range(15):
            a, b = rng.sample(range(3), 2)
            if read_modify_write_transfer(
                bank, f"b{a}", a * 2, f"b{b}", b * 2, 10.0, 2.0
            ):
                committed += 1
        assert committed == 15
        assert total_balance(bank) == pytest.approx(6 * 1000.0)

    def test_concurrent_rmw_no_lost_updates(self):
        """The acid test: concurrent RMW increments against ONE account.

        Without strict 2PL holding the read lock to commit, increments get
        lost; the final balance must equal initial + commits * amount.
        """
        bank = build_bank_sites(2, 1, query_timeout=5.0)
        commits = []
        lock = threading.Lock()

        def worker(index):
            rng = random.Random(index)
            for _ in range(5):
                ok = read_modify_write_transfer(
                    bank, "b0", 0, "b1", 1, 7.0, timeout=3.0
                )
                with lock:
                    commits.append(ok)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        committed = sum(1 for ok in commits if ok)
        source = bank.query(
            "bank", "SELECT balance FROM accounts WHERE acct = 0"
        ).scalar()
        target = bank.query(
            "bank", "SELECT balance FROM accounts WHERE acct = 1"
        ).scalar()
        assert float(source) == pytest.approx(1000.0 - committed * 7.0)
        assert float(target) == pytest.approx(1000.0 + committed * 7.0)
        assert total_balance(bank) == pytest.approx(2000.0)

    def test_rmw_with_contention_and_timeouts(self):
        """Mixed outcomes under short timeouts still never lose an update."""
        bank = build_bank_sites(2, 1, query_timeout=0.3)
        results = []
        lock = threading.Lock()

        def worker(index):
            for _ in range(4):
                ok = read_modify_write_transfer(
                    bank, "b0", 0, "b1", 1, 5.0, timeout=0.3
                )
                with lock:
                    results.append(ok)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        committed = sum(1 for ok in results if ok)
        source = bank.query(
            "bank", "SELECT balance FROM accounts WHERE acct = 0"
        ).scalar()
        assert float(source) == pytest.approx(1000.0 - committed * 5.0)
        assert total_balance(bank) == pytest.approx(2000.0)
