"""Printer tests: round-trips and dialect-specific rendering."""

import pytest

from repro.errors import SQLError
from repro.sql import (
    GLOBAL_DIALECT,
    ORACLE_DIALECT,
    POSTGRES_DIALECT,
    ast,
    get_dialect,
    parse_statement,
    to_sql,
)
from repro.sql.printer import expression_to_sql

ROUNDTRIP_QUERIES = [
    "SELECT a FROM t",
    "SELECT DISTINCT a, b AS c FROM t WHERE a > 1 AND b < 2",
    "SELECT * FROM t ORDER BY a DESC LIMIT 3 OFFSET 1",
    "SELECT a FROM t GROUP BY a HAVING COUNT(*) > 1",
    "SELECT a FROM t1 JOIN t2 ON t1.x = t2.y LEFT JOIN t3 ON t2.z = t3.z",
    "SELECT a FROM t WHERE x BETWEEN 1 AND 2 OR y NOT IN (1, 2)",
    "SELECT a FROM t WHERE name LIKE 'A%' AND note IS NOT NULL",
    "SELECT CASE WHEN a > 0 THEN 'p' ELSE 'n' END AS sign FROM t",
    "SELECT CAST(a AS FLOAT) FROM t",
    "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.x = t.x)",
    "SELECT a FROM t UNION ALL SELECT b FROM u",
    "SELECT a FROM (SELECT a FROM t) AS d WHERE a = 1",
    "SELECT COUNT(DISTINCT a), SUM(b), MIN(c), MAX(d), AVG(e) FROM t",
    "SELECT -a + 2 * (b - 1) FROM t",
    "SELECT a || '-' || b FROM t",
    "INSERT INTO t (a, b) VALUES (1, 'x''y'), (NULL, '')",
    "INSERT INTO t SELECT a FROM u WHERE a > 0",
    "UPDATE t SET a = a + 1 WHERE b IN (SELECT b FROM u)",
    "DELETE FROM t WHERE a IS NULL",
    "CREATE TABLE t (a INTEGER PRIMARY KEY, b VARCHAR(10) NOT NULL)",
    "DROP TABLE IF EXISTS t",
    "CREATE UNIQUE INDEX i ON t (a, b)",
    "SELECT a FROM t WHERE NOT (a = 1 OR b = 2)",
]


class TestRoundTrip:
    @pytest.mark.parametrize("sql", ROUNDTRIP_QUERIES)
    def test_parse_print_parse_fixpoint(self, sql):
        first = parse_statement(sql)
        printed = to_sql(first)
        second = parse_statement(printed)
        assert first == second, printed

    def test_printed_text_is_stable(self):
        stmt = parse_statement("SELECT a FROM t WHERE a>1")
        once = to_sql(stmt)
        twice = to_sql(parse_statement(once))
        assert once == twice


class TestDialects:
    def test_limit_becomes_rownum_for_oracle(self):
        stmt = parse_statement("SELECT a FROM t LIMIT 5")
        text = to_sql(stmt, ORACLE_DIALECT)
        assert "LIMIT" not in text
        assert "ROWNUM <= 5" in text

    def test_limit_offset_rownum_bound(self):
        stmt = parse_statement("SELECT a FROM t LIMIT 5 OFFSET 2")
        assert "ROWNUM <= 7" in to_sql(stmt, ORACLE_DIALECT)

    def test_postgres_keeps_limit(self):
        stmt = parse_statement("SELECT a FROM t LIMIT 5")
        assert "LIMIT 5" in to_sql(stmt, POSTGRES_DIALECT)

    def test_oracle_boolean_literals(self):
        stmt = parse_statement("SELECT * FROM t WHERE flag = TRUE")
        assert "= 1" in to_sql(stmt, ORACLE_DIALECT)
        assert "TRUE" in to_sql(stmt, POSTGRES_DIALECT)

    def test_oracle_type_mapping(self):
        stmt = parse_statement(
            "CREATE TABLE t (a INTEGER, s VARCHAR(10), f FLOAT, b BOOLEAN)"
        )
        text = to_sql(stmt, ORACLE_DIALECT)
        assert "NUMBER(38)" in text
        assert "VARCHAR(10)" in text  # parametrised names keep their params
        assert "NUMBER(1)" in text

    def test_postgres_type_mapping(self):
        stmt = parse_statement("CREATE TABLE t (n NUMBER)")
        assert "NUMERIC" in to_sql(stmt, POSTGRES_DIALECT)

    def test_function_mapping(self):
        stmt = parse_statement("SELECT NOW() FROM t")
        assert "SYSDATE" in to_sql(stmt, ORACLE_DIALECT)
        stmt2 = parse_statement("SELECT SYSDATE() FROM t")
        assert "NOW" in to_sql(stmt2, POSTGRES_DIALECT)

    def test_full_join_unsupported_on_oracle(self):
        stmt = parse_statement("SELECT * FROM a FULL JOIN b ON a.x = b.x")
        with pytest.raises(SQLError):
            to_sql(stmt, ORACLE_DIALECT)

    def test_get_dialect(self):
        assert get_dialect("oracle") is ORACLE_DIALECT
        assert get_dialect("POSTGRES") is POSTGRES_DIALECT
        with pytest.raises(KeyError):
            get_dialect("db2")


class TestLiteralsAndIdentifiers:
    def test_string_escaping(self):
        assert expression_to_sql(ast.Literal("it's")) == "'it''s'"

    def test_null(self):
        assert expression_to_sql(ast.Literal(None)) == "NULL"

    def test_weird_identifier_quoted(self):
        stmt = ast.Select(
            items=[ast.SelectItem(ast.ColumnRef("weird name"))],
            from_clause=[ast.TableName("t")],
        )
        assert '"weird name"' in to_sql(stmt)

    def test_plain_identifier_not_quoted(self):
        assert expression_to_sql(ast.ColumnRef("abc_1")) == "abc_1"

    def test_precedence_parenthesisation(self):
        # (a + b) * c must keep its parens when printed
        expr = ast.BinaryOp(
            "*", ast.BinaryOp("+", ast.ColumnRef("a"), ast.ColumnRef("b")),
            ast.ColumnRef("c"),
        )
        assert expression_to_sql(expr) == "(a + b) * c"

    def test_or_inside_and_parenthesised(self):
        expr = ast.BinaryOp(
            "AND",
            ast.BinaryOp("OR", ast.ColumnRef("a"), ast.ColumnRef("b")),
            ast.ColumnRef("c"),
        )
        text = expression_to_sql(expr)
        assert text == "(a OR b) AND c"

    def test_boolean_rendering_global(self):
        assert expression_to_sql(ast.Literal(True), GLOBAL_DIALECT) == "TRUE"
