"""Global transaction tests: 2PC, aborts, timeouts, recovery, invariants."""

import pytest

from repro.concurrency.wal import LogRecordType
from repro.errors import (
    DeadlockError,
    GatewayError,
    TransactionAborted,
    TransactionError,
)
from repro.txn import GlobalTxnState, recover_participant
from repro.workloads import build_bank_sites, total_balance


@pytest.fixture
def bank():
    return build_bank_sites(3, 4, query_timeout=1.0)


class TestCommitPaths:
    def test_single_site_one_phase_commit(self, bank):
        txn = bank.begin_transaction()
        txn.execute("b0", "UPDATE account SET balance = balance + 1 WHERE acct = 0")
        txn.commit()
        assert txn.state is GlobalTxnState.COMMITTED
        # one-phase: no coordinator 2PC records
        assert not any(
            r.record_type is LogRecordType.COORD_BEGIN_2PC
            for r in bank.transactions.wal.records
        )

    def test_multi_site_uses_2pc(self, bank):
        txn = bank.begin_transaction()
        txn.execute("b0", "UPDATE account SET balance = balance - 5 WHERE acct = 0")
        txn.execute("b1", "UPDATE account SET balance = balance + 5 WHERE acct = 4")
        txn.commit()
        record_types = [r.record_type for r in bank.transactions.wal.records]
        assert LogRecordType.COORD_BEGIN_2PC in record_types
        assert LogRecordType.COORD_COMMIT in record_types
        assert LogRecordType.COORD_END in record_types
        assert total_balance(bank) == 3 * 4 * 1000.0

    def test_2pc_message_pattern(self, bank):
        txn = bank.begin_transaction()
        txn.execute("b0", "UPDATE account SET balance = balance - 5 WHERE acct = 0")
        txn.execute("b1", "UPDATE account SET balance = balance + 5 WHERE acct = 4")
        before = txn.trace.message_count
        txn.commit()
        # per participant: prepare+vote+commit+ack = 4 messages
        assert txn.trace.message_count - before == 8

    def test_reads_after_commit_see_changes(self, bank):
        txn = bank.begin_transaction()
        txn.execute("b0", "UPDATE account SET balance = 1234 WHERE acct = 0")
        txn.commit()
        value = bank.query(
            "bank", "SELECT balance FROM accounts WHERE acct = 0"
        ).scalar()
        assert value == 1234.0

    def test_context_manager_commits(self, bank):
        with bank.begin_transaction() as txn:
            txn.execute("b0", "UPDATE account SET balance = 7 WHERE acct = 0")
        assert (
            bank.query("bank", "SELECT balance FROM accounts WHERE acct = 0").scalar()
            == 7.0
        )

    def test_context_manager_aborts_on_exception(self, bank):
        with pytest.raises(RuntimeError):
            with bank.begin_transaction() as txn:
                txn.execute("b0", "UPDATE account SET balance = 7 WHERE acct = 0")
                raise RuntimeError("boom")
        assert (
            bank.query("bank", "SELECT balance FROM accounts WHERE acct = 0").scalar()
            == 1000.0
        )


class TestAbortPaths:
    def test_abort_rolls_back_all_branches(self, bank):
        txn = bank.begin_transaction()
        txn.execute("b0", "UPDATE account SET balance = 0 WHERE acct = 0")
        txn.execute("b2", "UPDATE account SET balance = 0 WHERE acct = 8")
        txn.abort()
        assert txn.state is GlobalTxnState.ABORTED
        assert total_balance(bank) == 12000.0

    def test_execute_after_finish_rejected(self, bank):
        txn = bank.begin_transaction()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.execute("b0", "SELECT * FROM account")

    def test_duplicate_global_id_rejected(self, bank):
        bank.begin_transaction("G_X")
        with pytest.raises(TransactionError):
            bank.begin_transaction("G_X")

    def test_unknown_site_rejected(self, bank):
        txn = bank.begin_transaction()
        with pytest.raises(TransactionError):
            txn.execute("nowhere", "SELECT 1")

    def test_abort_counters(self, bank):
        txn = bank.begin_transaction()
        txn.execute("b0", "UPDATE account SET balance = 0 WHERE acct = 0")
        txn.abort()
        assert bank.transactions.aborts == 1
        assert bank.transactions.commits == 0


class TestTimeoutDeadlockPolicy:
    def test_blocked_statement_aborts_global_txn(self, bank):
        blocker = bank.begin_transaction()
        blocker.execute("b0", "UPDATE account SET balance = 1 WHERE acct = 0")

        victim = bank.begin_transaction()
        victim.execute("b1", "UPDATE account SET balance = 2 WHERE acct = 4")
        with pytest.raises(TransactionAborted) as exc:
            victim.execute(
                "b0",
                "UPDATE account SET balance = 3 WHERE acct = 1",
                timeout=0.05,
            )
        assert exc.value.reason == "timeout"
        assert victim.state is GlobalTxnState.ABORTED
        # the victim's b1 branch was rolled back too
        blocker.abort()
        assert total_balance(bank) == 12000.0
        assert bank.transactions.timeout_aborts == 1

    def test_global_read_under_txn_holds_locks(self, bank):
        reader = bank.begin_transaction()
        result = bank.transactional_query(
            reader, "bank", "SELECT SUM(balance) FROM accounts"
        )
        assert float(result.scalar()) == 12000.0
        # a writer now times out against the read locks
        writer = bank.begin_transaction()
        with pytest.raises(TransactionAborted):
            writer.execute(
                "b0",
                "UPDATE account SET balance = 0 WHERE acct = 0",
                timeout=0.05,
            )
        reader.commit()

    def test_transactional_query_timeout_aborts(self, bank):
        writer = bank.begin_transaction()
        writer.execute("b0", "UPDATE account SET balance = 1 WHERE acct = 0")
        reader = bank.begin_transaction()
        bank.transactions.query_timeout = 0.05
        try:
            with pytest.raises(TransactionAborted):
                bank.transactional_query(
                    reader, "bank", "SELECT SUM(balance) FROM accounts"
                )
        finally:
            bank.transactions.query_timeout = 1.0
            writer.abort()


class TestRecovery:
    def _prepare_in_doubt(self, bank):
        """Drive a txn to PREPARED everywhere, then 'crash' the coordinator."""
        gtm = bank.transactions
        txn = bank.begin_transaction("G_DOUBT")
        txn.execute("b0", "UPDATE account SET balance = 0 WHERE acct = 0")
        txn.execute("b1", "UPDATE account SET balance = 0 WHERE acct = 4")
        for site in txn.participants:
            bank.gateways[site].prepare("G_DOUBT")
        return txn

    def test_presumed_abort_without_commit_record(self, bank):
        self._prepare_in_doubt(bank)
        # Coordinator crashed before logging COORD_COMMIT.
        for site in ("b0", "b1"):
            report = recover_participant(
                bank.components[site], bank.transactions.wal
            )
            assert report.aborted == ["G_DOUBT"]
        # The branches' sessions were resolved directly at the DBMS level;
        # drop the gateway bookkeeping before checking balances.
        for site in ("b0", "b1"):
            bank.gateways[site]._txn_sessions.pop("G_DOUBT", None)
        assert total_balance(bank) == 12000.0

    def test_commit_record_drives_redo(self, bank):
        self._prepare_in_doubt(bank)
        bank.transactions.wal.append(
            LogRecordType.COORD_COMMIT, "G_DOUBT", flush=True
        )
        for site in ("b0", "b1"):
            report = recover_participant(
                bank.components[site], bank.transactions.wal
            )
            assert report.committed == ["G_DOUBT"]
        for site in ("b0", "b1"):
            bank.gateways[site]._txn_sessions.pop("G_DOUBT", None)
        assert total_balance(bank) == 10000.0

    def test_recovery_ignores_non_prepared(self, bank):
        txn = bank.begin_transaction()
        txn.execute("b0", "UPDATE account SET balance = 5 WHERE acct = 0")
        report = recover_participant(bank.components["b0"], bank.transactions.wal)
        assert report.committed == [] and report.aborted == []
        txn.abort()


class TestParticipantRestart:
    """A participant *process* restart loses volatile transaction state.

    Prepared branches forced their PREPARE record (undo + locks) to the log
    in phase 1, so they survive in durable form — forgotten by
    ``active_transactions()`` but recoverable — and ``recover_participant``
    must reinstate and resolve them against the coordinator's decision.
    """

    def _prepare_in_doubt(self, bank):
        txn = bank.begin_transaction("G_DOUBT")
        txn.execute("b0", "UPDATE account SET balance = 0 WHERE acct = 0")
        txn.execute("b1", "UPDATE account SET balance = 0 WHERE acct = 4")
        for site in txn.participants:
            bank.gateways[site].prepare("G_DOUBT")
        return txn

    def test_forgotten_prepared_branch_commits(self, bank):
        self._prepare_in_doubt(bank)
        bank.transactions.wal.append(
            LogRecordType.COORD_COMMIT, "G_DOUBT", flush=True
        )
        manager = bank.components["b0"].transactions
        survivors = manager.simulate_process_restart()
        assert survivors == manager.forgotten_prepared()
        assert len(survivors) == 1
        # gone from volatile state, but its write locks are still held
        assert all(
            txn.global_id != "G_DOUBT" for txn in manager.active_transactions()
        )
        assert any(entry["holders"] for entry in manager.locks.snapshot())

        report = recover_participant(bank.components["b0"], bank.transactions.wal)
        assert report.committed == ["G_DOUBT"]
        assert report.forgotten == ["G_DOUBT"]
        assert manager.forgotten_prepared() == []
        assert not any(
            entry["holders"] or entry["waiters"]
            for entry in manager.locks.snapshot()
        )
        bank.gateways["b0"]._txn_sessions.pop("G_DOUBT", None)
        result = bank.components["b0"].execute(
            "SELECT balance FROM account WHERE acct = 0"
        )
        assert float(result.rows[0][0]) == 0.0  # the committed write stuck

    def test_forgotten_prepared_branch_presumed_abort(self, bank):
        # no COORD_COMMIT record: presumed abort must undo the write
        self._prepare_in_doubt(bank)
        manager = bank.components["b1"].transactions
        manager.simulate_process_restart()
        report = recover_participant(bank.components["b1"], bank.transactions.wal)
        assert report.aborted == ["G_DOUBT"]
        assert report.forgotten == ["G_DOUBT"]
        assert manager.forgotten_prepared() == []
        bank.gateways["b1"]._txn_sessions.pop("G_DOUBT", None)
        result = bank.components["b1"].execute(
            "SELECT balance FROM account WHERE acct = 4"
        )
        assert float(result.rows[0][0]) == 1000.0

    def test_non_prepared_transactions_die_with_the_process(self, bank):
        txn = bank.begin_transaction()
        txn.execute("b0", "UPDATE account SET balance = 7 WHERE acct = 0")
        manager = bank.components["b0"].transactions
        aborts_before = manager.aborts
        survivors = manager.simulate_process_restart()
        assert survivors == []
        assert manager.forgotten_prepared() == []
        assert manager.active_transactions() == []
        assert manager.aborts == aborts_before + 1
        assert not any(entry["holders"] for entry in manager.locks.snapshot())
        bank.gateways["b0"]._txn_sessions.pop(txn.global_id, None)
        result = bank.components["b0"].execute(
            "SELECT balance FROM account WHERE acct = 0"
        )
        assert float(result.rows[0][0]) == 1000.0  # write rolled back

    def test_reinstate_unknown_branch_rejected(self, bank):
        manager = bank.components["b0"].transactions
        with pytest.raises(TransactionError):
            manager.reinstate_prepared("never-prepared")


class TestPhase2Robustness:
    def test_one_failing_participant_does_not_skip_the_rest(
        self, bank, monkeypatch
    ):
        """Regression: a participant whose commit() blows up after
        COORD_COMMIT is logged used to abort the loop, leaving the other
        branches PREPARED and the transaction stuck in PREPARING."""
        txn = bank.begin_transaction()
        txn.execute("b0", "UPDATE account SET balance = balance - 10 WHERE acct = 0")
        txn.execute("b1", "UPDATE account SET balance = balance + 10 WHERE acct = 4")
        txn.execute("b2", "UPDATE account SET balance = balance + 0 WHERE acct = 8")

        def exploding_commit(global_id, trace=None, from_site="federation"):
            raise GatewayError("local commit machinery failure")

        monkeypatch.setattr(bank.gateways["b1"], "commit", exploding_commit)
        txn.commit()  # must not raise, must reach the other participants
        assert txn.state is GlobalTxnState.COMMITTED
        assert bank.gateways["b0"].prepared_branches() == []
        assert bank.gateways["b2"].prepared_branches() == []
        # The miss is recorded durably for recovery.
        assert bank.transactions.wal.pending_deliveries() == {
            (txn.global_id, "b1"): "commit"
        }
        monkeypatch.undo()
        actions = bank.transactions.recover_in_doubt()
        assert (txn.global_id, "b1", "commit") in actions
        assert total_balance(bank) == 12000.0

    def test_run_global_query_aborts_on_local_branch_abort(
        self, bank, monkeypatch
    ):
        """Regression: a TransactionAborted from a local branch (local
        deadlock victim) used to leave the global txn ACTIVE with a dead
        branch; it must abort the global transaction like execute() does."""
        txn = bank.begin_transaction()
        processor = bank.processor("bank")

        def local_victim(*args, **kwargs):
            raise DeadlockError("local deadlock victim")

        monkeypatch.setattr(processor.executor, "execute", local_victim)
        with pytest.raises(TransactionAborted):
            bank.transactions.run_global_query(
                txn, processor, "SELECT SUM(balance) FROM accounts"
            )
        assert txn.state is GlobalTxnState.ABORTED
        monkeypatch.undo()
        assert total_balance(bank) == 12000.0


class TestSerializability:
    def test_concurrent_transfers_conserve_money(self, bank):
        """Sequential interleavings through the GTM keep the invariant."""
        import random

        rng = random.Random(1)
        for _ in range(20):
            source = rng.randrange(3)
            target = (source + 1) % 3
            txn = bank.begin_transaction()
            txn.execute(
                f"b{source}",
                f"UPDATE account SET balance = balance - 10 "
                f"WHERE acct = {source * 4}",
            )
            txn.execute(
                f"b{target}",
                f"UPDATE account SET balance = balance + 10 "
                f"WHERE acct = {target * 4}",
            )
            txn.commit()
        assert total_balance(bank) == 12000.0
        assert bank.transactions.commits == 20
