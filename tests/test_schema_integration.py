"""Schema-integration tests: merges, integration functions, federations."""

import pytest

from repro.errors import FederationError
from repro.myriad import MyriadSystem
from repro.schema import (
    IntegratedRelation,
    all_agree,
    join_merge,
    numeric_average,
    prefer_first,
    prefer_last,
    standard_registry,
    union_merge,
    view_relation,
)
from repro.sql import ast


@pytest.fixture
def system():
    sys_ = MyriadSystem()
    a = sys_.add_postgres("a")
    b = sys_.add_oracle("b")
    a.dbms.execute("CREATE TABLE t1 (k INTEGER PRIMARY KEY, v VARCHAR(10), n FLOAT)")
    b.dbms.execute("CREATE TABLE t2 (k INTEGER PRIMARY KEY, v VARCHAR2(10), m NUMBER)")
    a.dbms.execute("INSERT INTO t1 VALUES (1, 'x', 1.5), (2, 'y', 2.5)")
    b.dbms.execute("INSERT INTO t2 VALUES (2, 'yy', 20), (3, 'z', 30)")
    a.export_table("t1", "rel", ["k", "v", "n"])
    b.export_table("t2", "rel", ["k", "v", "m"])
    return sys_


class TestResolvers:
    def test_prefer_first(self):
        assert prefer_first(None, 2, 3) == 2
        assert prefer_first(None, None) is None
        assert prefer_first(1, 2) == 1

    def test_prefer_last(self):
        assert prefer_last(1, None, 3) == 3
        assert prefer_last(None, None) is None

    def test_numeric_average(self):
        assert numeric_average(2, 4) == 3
        assert numeric_average(None, 4) == 4
        assert numeric_average(None, None) is None

    def test_all_agree(self):
        assert all_agree(5, 5, None) == 5
        assert all_agree(5, 6) is None
        assert all_agree(None, None) is None

    def test_registry(self):
        registry = standard_registry()
        assert registry.has("PREFER_FIRST")
        assert registry.get("prefer_first") is prefer_first
        with pytest.raises(FederationError):
            registry.get("NOPE")
        with pytest.raises(FederationError):
            registry.register("PREFER_FIRST", prefer_first)


class TestUnionMerge:
    def test_structure(self):
        relation = union_merge(
            "u",
            [("a", "rel", ["k", "v"]), ("b", "rel", ["k", "v"])],
            source_tag_column="src",
        )
        assert relation.column_names == ["k", "v", "src"]
        assert relation.sources() == [("a", "rel"), ("b", "rel")]
        assert isinstance(relation.view, ast.SetOperation)
        assert relation.view.kind is ast.SetOpKind.UNION_ALL

    def test_distinct_union(self):
        relation = union_merge(
            "u", [("a", "rel", ["k"]), ("b", "rel", ["k"])], distinct=True
        )
        assert relation.view.kind is ast.SetOpKind.UNION

    def test_column_mapping_per_source(self):
        relation = union_merge(
            "u",
            [("a", "rel", {"key": "k"}), ("b", "rel", {"key": "k"})],
        )
        assert relation.column_names == ["key"]

    def test_mismatched_columns_rejected(self):
        with pytest.raises(FederationError):
            union_merge("u", [("a", "rel", ["k"]), ("b", "rel", ["v"])])

    def test_empty_sources_rejected(self):
        with pytest.raises(FederationError):
            union_merge("u", [])

    def test_lineage_recorded(self):
        relation = union_merge(
            "u", [("a", "rel", {"key": "k"}), ("b", "rel", {"key": "k"})]
        )
        origins = relation.lineage["key"]
        assert {(o.site, o.column) for o in origins} == {("a", "k"), ("b", "k")}

    def test_execution(self, system):
        fed = system.create_federation("f")
        fed.add_relation(
            union_merge(
                "merged",
                [("a", "rel", ["k", "v"]), ("b", "rel", ["k", "v"])],
                source_tag_column="src",
            )
        )
        result = system.query("f", "SELECT k, src FROM merged ORDER BY k, src")
        assert result.rows == [
            (1, "a"), (2, "a"), (2, "b"), (3, "b"),
        ]


class TestJoinMerge:
    def test_structure_and_lineage(self):
        relation = join_merge(
            "j",
            left=("a", "rel"),
            right=("b", "rel"),
            on=[("k", "k")],
            attributes={
                "k": ("key", 0),
                "av": ("left", "v"),
                "bv": ("right", "v"),
                "v": ("resolve", "PREFER_FIRST", "v", "v"),
            },
        )
        assert relation.column_names == ["k", "av", "bv", "v"]
        assert len(relation.lineage["v"]) == 2

    def test_bad_spec_rejected(self):
        with pytest.raises(FederationError):
            join_merge(
                "j", ("a", "rel"), ("b", "rel"), [("k", "k")],
                {"x": ("nonsense", "v")},
            )

    def test_execution_full_outer_with_resolution(self, system):
        fed = system.create_federation("f")
        fed.add_relation(
            join_merge(
                "j",
                left=("a", "rel"),
                right=("b", "rel"),
                on=[("k", "k")],
                attributes={
                    "k": ("key", 0),
                    "v": ("resolve", "PREFER_FIRST", "v", "v"),
                    "n": ("left", "n"),
                    "m": ("right", "m"),
                },
            )
        )
        result = system.query("f", "SELECT k, v, n, m FROM j ORDER BY k")
        assert result.rows == [
            (1, "x", 1.5, None),   # left-only
            (2, "y", 2.5, 20),     # both; left v preferred
            (3, "z", None, 30),    # right-only
        ]


class TestFederation:
    def test_define_and_query_sql_view(self, system):
        fed = system.create_federation("f")
        fed.define_relation("av", "SELECT k, v FROM a.rel WHERE n > 2")
        result = system.query("f", "SELECT * FROM av")
        assert result.rows == [(2, "y")]

    def test_unknown_site_rejected(self, system):
        fed = system.create_federation("f")
        with pytest.raises(FederationError):
            fed.define_relation("bad", "SELECT k FROM nowhere.rel")

    def test_unknown_export_rejected(self, system):
        fed = system.create_federation("f")
        with pytest.raises(FederationError):
            fed.define_relation("bad", "SELECT k FROM a.ghost")

    def test_duplicate_relation_rejected(self, system):
        fed = system.create_federation("f")
        fed.define_relation("r", "SELECT k FROM a.rel")
        with pytest.raises(FederationError):
            fed.define_relation("r", "SELECT k FROM b.rel")

    def test_drop_and_replace(self, system):
        fed = system.create_federation("f")
        fed.define_relation("r", "SELECT k FROM a.rel")
        fed.drop_relation("r")
        assert not fed.has_relation("r")
        with pytest.raises(FederationError):
            fed.drop_relation("r")

    def test_views_over_views(self, system):
        fed = system.create_federation("f")
        fed.define_relation("base", "SELECT k, n FROM a.rel")
        fed.define_relation("derived", "SELECT k FROM base WHERE n > 2")
        result = system.query("f", "SELECT * FROM derived")
        assert result.rows == [(2,)]

    def test_cycle_detection(self, system):
        fed = system.create_federation("f")
        # Manually create mutually recursive views (bypassing validation).
        from repro.sql import parse_query

        fed.relations["v1"] = IntegratedRelation("v1", parse_query("SELECT * FROM v2"))
        fed.relations["v2"] = IntegratedRelation("v2", parse_query("SELECT * FROM v1"))
        with pytest.raises(FederationError):
            system.query("f", "SELECT * FROM v1")

    def test_multiple_federations_independent(self, system):
        fed1 = system.create_federation("f1")
        fed2 = system.create_federation("f2")
        fed1.define_relation("r", "SELECT k FROM a.rel")
        fed2.define_relation("r", "SELECT k FROM b.rel")
        rows1 = system.query("f1", "SELECT COUNT(*) FROM r").scalar()
        rows2 = system.query("f2", "SELECT COUNT(*) FROM r").scalar()
        assert rows1 == 2 and rows2 == 2
        assert sorted(system.query("f1", "SELECT k FROM r").rows) == [(1,), (2,)]
        assert sorted(system.query("f2", "SELECT k FROM r").rows) == [(2,), (3,)]

    def test_custom_integration_function(self, system):
        fed = system.create_federation("f")
        fed.register_function("TWICE", lambda v: None if v is None else v * 2)
        fed.define_relation("d", "SELECT k, TWICE(n) AS n2 FROM a.rel")
        result = system.query("f", "SELECT n2 FROM d ORDER BY k")
        assert result.rows == [(3.0,), (5.0,)]

    def test_view_relation_helper(self):
        relation = view_relation("x", "SELECT a FROM s.e")
        assert relation.name == "x"
        assert relation.sources() == [("s", "e")]

    def test_definition_sql_roundtrips(self, system):
        fed = system.create_federation("f")
        relation = fed.define_relation("r", "SELECT k, v FROM a.rel WHERE n > 1")
        text = relation.definition_sql()
        assert "a.rel" in text and "WHERE" in text

    def test_star_in_view_rejected_for_column_names(self):
        relation = view_relation("x", "SELECT * FROM s.e")
        with pytest.raises(FederationError):
            relation.column_names
