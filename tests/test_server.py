"""The concurrent serving layer (PR 6 tentpole) and the session storm test.

``FederationServer`` hands out per-client sessions over one MyriadSystem;
the storm test (satellite 4) drives N threads × M statements in mixed
transaction modes and checks exact counter totals, no orphaned locks, and
snapshot repeatability while writers commit.
"""

import threading

import pytest

from repro.errors import ServerError
from repro.myriad import MyriadSystem
from repro.server import ClientSession, FederationServer, SessionPool
from repro.workloads import build_bank_sites, total_balance


@pytest.fixture
def system():
    sys_ = MyriadSystem()
    gw = sys_.add_postgres("s1")
    gw.dbms.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER)")
    gw.dbms.execute("INSERT INTO t VALUES (1, 10)")
    gw.dbms.execute("INSERT INTO t VALUES (2, 20)")
    gw.export_table("t", "t")
    fed = sys_.create_federation("f")
    fed.define_relation("rel", "SELECT k, v FROM s1.t")
    yield sys_
    sys_.close()


class TestServerAPI:
    def test_connect_query_close(self, system):
        server = system.create_server(max_sessions=4)
        session = server.connect()
        assert isinstance(session, ClientSession)
        result = session.query("f", "SELECT SUM(v) FROM rel")
        assert result.scalar() == 30
        assert session.stats()["queries"] == 1
        session.close()
        assert server.open_sessions == 0
        assert server.stats()["queries"] == 1  # folded into retired totals

    def test_create_server_idempotent_and_property(self, system):
        server = system.create_server(max_sessions=4)
        assert system.create_server() is server
        assert system.server is server

    def test_pool_exhaustion(self, system):
        server = system.create_server(max_sessions=2)
        a = server.connect()
        server.connect()
        with pytest.raises(ServerError):
            server.connect()
        a.close()
        server.connect()  # freed slot is reusable

    def test_closed_session_rejects_work(self, system):
        server = system.create_server()
        session = server.connect()
        session.close()
        with pytest.raises(ServerError):
            session.execute("f", "SELECT * FROM rel")
        session.close()  # idempotent

    def test_explicit_transaction_commit(self, system):
        server = system.create_server()
        with server.connect() as session:
            session.execute("f", "BEGIN")
            assert session.in_transaction
            session.execute("f", "UPDATE rel SET v = v + 1 WHERE k = 1")
            session.execute("f", "COMMIT")
            assert not session.in_transaction
            assert session.query("f", "SELECT v FROM rel WHERE k = 1").scalar() == 11
        stats = server.stats()
        assert stats["commits"] == 1 and stats["updates"] == 1

    def test_rollback_discards_writes(self, system):
        server = system.create_server()
        with server.connect() as session:
            session.begin()
            session.execute("f", "UPDATE rel SET v = 0 WHERE k = 2")
            session.rollback()
            assert session.query("f", "SELECT v FROM rel WHERE k = 2").scalar() == 20

    def test_read_only_session_rejects_dml(self, system):
        server = system.create_server()
        with server.connect() as session:
            session.execute("f", "BEGIN READ ONLY")
            assert session.query("f", "SELECT SUM(v) FROM rel").scalar() == 30
            with pytest.raises(ServerError):
                session.execute("f", "UPDATE rel SET v = 0 WHERE k = 1")
            session.execute("f", "COMMIT")

    def test_close_aborts_open_transaction(self, system):
        server = system.create_server()
        session = server.connect()
        session.begin()
        session.execute("f", "UPDATE rel SET v = -1 WHERE k = 1")
        session.close()
        fresh = server.connect()
        assert fresh.query("f", "SELECT v FROM rel WHERE k = 1").scalar() == 10
        assert server.stats()["aborts"] == 1
        # No branch locks left behind.
        assert all(not locks for locks in system.lock_table().values())

    def test_server_close_is_idempotent_and_closes_sessions(self, system):
        server = system.create_server()
        session = server.connect()
        server.close()
        assert session.closed
        server.close()
        with pytest.raises(ServerError):
            server.connect()

    def test_system_close_closes_server(self):
        sys_ = MyriadSystem()
        server = sys_.create_server()
        session = server.connect()
        sys_.close()
        assert session.closed
        assert sys_.server is None

    def test_sessions_in_federation_stats(self, system):
        server = system.create_server(max_sessions=8)
        with server.connect() as session:
            session.query("f", "SELECT * FROM rel")
            stats = system.federation_stats()["sessions"]
            assert stats["open"] == 1
            assert stats["max"] == 8
            assert stats["queries"] == 1

    def test_session_pool_alias(self):
        assert SessionPool is FederationServer


class TestSessionStorm:
    """N threads × M statements, mixed modes, exact invariants at the end."""

    READERS = 6
    READS = 15
    WRITERS = 4
    WRITE_TXNS = 8

    def test_storm(self):
        system = build_bank_sites(
            2, 16, initial_balance=100.0, query_timeout=10.0
        )
        # The union relation is read-only; writers go through per-site
        # single-export relations (which are updatable).
        fed = system.federation("bank")
        for site in ("b0", "b1"):
            fed.define_relation(
                f"accounts_{site}",
                f"SELECT acct, balance FROM {site}.account",
            )
        server = system.create_server(max_sessions=32)
        initial_total = total_balance(system)
        errors: list[Exception] = []
        bad_sums: list[float] = []
        barrier = threading.Barrier(self.READERS + self.WRITERS + 1)

        def reader(use_read_only: bool):
            try:
                session = server.connect()
                barrier.wait()
                with session:
                    for i in range(self.READS):
                        if use_read_only:
                            session.execute("bank", "BEGIN READ ONLY")
                        total = session.query(
                            "bank", "SELECT SUM(balance) FROM accounts"
                        ).scalar()
                        if use_read_only:
                            session.execute("bank", "COMMIT")
                        if float(total) != initial_total:
                            bad_sums.append(float(total))
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        def writer(seed: int):
            try:
                session = server.connect()
                barrier.wait()
                with session:
                    for i in range(self.WRITE_TXNS):
                        # Move money between two accounts at the SAME site in
                        # one transaction: any snapshot preserves the total.
                        site = (seed + i) % 2
                        a = site * 16 + (seed % 16)
                        b = site * 16 + ((seed + 7) % 16)
                        session.begin()
                        session.execute(
                            "bank",
                            f"UPDATE accounts_b{site} SET balance = "
                            f"balance - 5 WHERE acct = {a}",
                        )
                        session.execute(
                            "bank",
                            f"UPDATE accounts_b{site} SET balance = "
                            f"balance + 5 WHERE acct = {b}",
                        )
                        if i % 4 == 3:
                            session.rollback()
                        else:
                            session.commit()
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=reader, args=(index % 2 == 0,))
            for index in range(self.READERS)
        ] + [
            threading.Thread(target=writer, args=(index,))
            for index in range(self.WRITERS)
        ]
        for thread in threads:
            thread.start()

        # Snapshot repeatability mid-update, at a component DBMS: one
        # read-only transaction's repeated reads agree while writers
        # commit around it.
        local = system.component("b0").connect()
        barrier.wait()
        local.begin(read_only=True)
        first = local.execute("SELECT SUM(balance) FROM account").scalar()
        for thread in threads:
            thread.join()
        second = local.execute("SELECT SUM(balance) FROM account").scalar()
        assert first == second
        local.commit()

        assert errors == []
        assert bad_sums == []

        # Exact counter totals: every statement is accounted for.
        stats = server.stats()
        ro_readers = (self.READERS + 1) // 2
        expected_commits = (
            self.WRITERS * (self.WRITE_TXNS - self.WRITE_TXNS // 4)
            + ro_readers * self.READS  # read-only COMMITs count too
        )
        expected_aborts = self.WRITERS * (self.WRITE_TXNS // 4)
        assert stats["queries"] == self.READERS * self.READS
        assert stats["updates"] == self.WRITERS * self.WRITE_TXNS * 2
        assert stats["commits"] == expected_commits
        assert stats["aborts"] == expected_aborts
        assert stats["errors"] == 0
        assert stats["total_connected"] == self.READERS + self.WRITERS

        # Money conserved, no orphaned locks anywhere.
        assert total_balance(system) == initial_total
        assert all(not locks for locks in system.lock_table().values())
        for site in ("b0", "b1"):
            manager = system.component(site).transactions
            assert manager.active_transactions() == []
            assert manager.active_snapshots() == 0
        system.close()
