"""Adaptive optimization tests (experiment E17).

Covers the feedback loop end to end:

- predicate/fetch shapes abstract literals so learned cardinalities
  generalise across parameter values
- the RuntimeStatsStore's EWMA learning and drift-anchored versioning
- estimate error shrinking monotonically across repeated executions when
  gateway statistics are stale (skew injected behind the gateway's back)
- mid-query re-planning: a semijoin whose source materialises far bigger
  than estimated is dropped, with a measurable simulated-cost win
- the off-by-default contract: with both knobs off, accounting is
  bit-identical to a system that never heard of adaptivity
"""

import pytest

from repro.myriad import MyriadSystem
from repro.query.feedback import (
    RuntimeStatsStore,
    fragment_shape,
    predicate_shape,
    rows_shape,
)
from repro.sql import parse_expression

JOIN = "SELECT l.k, r.pad FROM lhs l JOIN rhs r ON l.k = r.k"


def build_skewed_join(
    initial_left: int = 3,
    final_left: int = 600,
    right_rows: int = 600,
    payload_width: int = 64,
    **system_kwargs,
):
    """Two-site join whose left-side statistics are stale by construction.

    Statistics are primed while ``left_t`` holds ``initial_left`` rows;
    the table then grows (or shrinks) to ``final_left`` through a *local*
    session the gateway never sees — exactly the autonomous-component
    drift MYRIAD gateways cannot observe.  Every right key matches a
    final left key, so the join result always has ``min(final_left,
    right_rows)`` rows.
    """
    system = MyriadSystem(query_timeout=5.0, **system_kwargs)
    s1 = system.add_postgres("s1")
    s2 = system.add_oracle("s2")
    s1.dbms.execute(
        "CREATE TABLE left_t (k INTEGER PRIMARY KEY, pad VARCHAR(8))"
    )
    s2.dbms.execute(
        "CREATE TABLE right_t (k INTEGER PRIMARY KEY, pad VARCHAR2(%d))"
        % payload_width
    )
    session = s1.dbms.connect()
    session.begin()
    for key in range(initial_left):
        session.execute("INSERT INTO left_t VALUES (?, ?)", [key, "y" * 8])
    session.commit()
    session = s2.dbms.connect()
    session.begin()
    for key in range(right_rows):
        session.execute(
            "INSERT INTO right_t VALUES (?, ?)", [key, "x" * payload_width]
        )
    session.commit()
    s1.export_table("left_t", "left_rel", ["k", "pad"])
    s2.export_table("right_t", "right_rel", ["k", "pad"])
    fed = system.create_federation("fed")
    fed.define_relation("lhs", "SELECT k, pad FROM s1.left_rel")
    fed.define_relation("rhs", "SELECT k, pad FROM s2.right_rel")
    # Prime the statistics caches on the pre-skew truth...
    s1.export_stats("left_rel")
    s2.export_stats("right_rel")
    # ...then drift the left table behind the gateway's back.
    session = s1.dbms.connect()
    session.begin()
    if final_left > initial_left:
        for key in range(initial_left, final_left):
            session.execute(
                "INSERT INTO left_t VALUES (?, ?)", [key, "y" * 8]
            )
    else:
        session.execute(
            "DELETE FROM left_t WHERE k >= ?", [final_left]
        )
    session.commit()
    return system


def estimate_error_bytes(result) -> float:
    """Sum over fetches of |estimated bytes - measured wire bytes|."""
    total = 0.0
    for fetch in result.plan.fetches:
        actual = result.fetch_actuals.get(fetch.index)
        if actual is None or fetch.est_bytes is None:
            continue
        total += abs(fetch.est_bytes - actual.bytes)
    return total


class TestShapes:
    def test_literals_are_anonymised(self):
        assert predicate_shape(
            parse_expression("grp = 3")
        ) == predicate_shape(parse_expression("grp = 42"))

    def test_structure_still_distinguishes(self):
        assert predicate_shape(
            parse_expression("grp = 3")
        ) != predicate_shape(parse_expression("grp = 3 AND val < 1.0"))
        assert predicate_shape(
            parse_expression("grp = 3")
        ) != predicate_shape(parse_expression("val = 3"))

    def test_no_predicate_shape(self):
        assert predicate_shape(None) == "-"

    def test_fragment_shape_varies_with_projection_and_semijoin(self):
        predicate = parse_expression("grp = 1")
        base = fragment_shape(["a", "b"], predicate)
        assert fragment_shape(["b", "a"], predicate) == base  # order-free
        assert fragment_shape(["a"], predicate) != base
        assert fragment_shape(["a", "b"], predicate, "k") != base

    def test_rows_shape_ignores_projection(self):
        predicate = parse_expression("grp = 1")
        assert rows_shape(predicate) == rows_shape(predicate)
        assert rows_shape(predicate) != fragment_shape(["a"], predicate)
        # but semijoin reduction still separates entries
        assert rows_shape(predicate, "k") != rows_shape(predicate)


class TestRuntimeStatsStore:
    def test_first_observation_bumps_version(self):
        store = RuntimeStatsStore()
        assert store.observe("s", "rel", "-", 100, 1000) is True
        assert store.version == 1

    def test_stable_observations_stop_bumping(self):
        store = RuntimeStatsStore()
        store.observe("s", "rel", "-", 100, 1000)
        for _ in range(5):
            assert store.observe("s", "rel", "-", 100, 1000) is False
        assert store.version == 1

    def test_drift_rebumps(self):
        store = RuntimeStatsStore()
        store.observe("s", "rel", "-", 100, 1000)
        assert store.observe("s", "rel", "-", 500, 5000) is True
        assert store.version == 2

    def test_ewma_learning(self):
        store = RuntimeStatsStore()
        store.observe("s", "rel", "-", 100, 1000)
        store.observe("s", "rel", "-", 200, 2000)
        entry = store.lookup("s", "rel", "-")
        assert entry.rows == pytest.approx(150)
        assert entry.samples == 2
        assert entry.confidence() == pytest.approx(2 / 3)

    def test_lookup_is_case_insensitive_on_export(self):
        store = RuntimeStatsStore()
        store.observe("s", "REL", "-", 10, 100)
        assert store.lookup("s", "rel", "-") is not None

    def test_capacity_evicts_lru(self):
        store = RuntimeStatsStore(capacity=2)
        store.observe("s", "rel", "a", 1, 1)
        store.observe("s", "rel", "b", 1, 1)
        store.observe("s", "rel", "c", 1, 1)
        assert len(store) == 2
        assert store.lookup("s", "rel", "a") is None

    def test_clear_bumps_version_once(self):
        store = RuntimeStatsStore()
        store.observe("s", "rel", "-", 1, 1)
        version = store.version
        store.clear()
        assert store.version == version + 1
        store.clear()  # empty: nothing to invalidate
        assert store.version == version + 1


class TestFeedbackLoop:
    def test_estimate_error_strictly_decreases(self):
        # Plan cache off: every run re-plans with the freshest learned
        # estimates, so convergence is visible run over run.
        with build_skewed_join(
            initial_left=50,
            final_left=600,
            adaptive_feedback=True,
            plan_cache_size=0,
            fragment_cache=False,
        ) as system:
            errors = [
                estimate_error_bytes(system.query("fed", JOIN))
                for _ in range(3)
            ]
        assert errors[0] > errors[1] > errors[2]

    def test_learned_rows_blend_toward_actuals(self):
        with build_skewed_join(
            initial_left=50,
            final_left=600,
            adaptive_feedback=True,
            plan_cache_size=0,
            fragment_cache=False,
        ) as system:
            first = system.query("fed", JOIN)
            second = system.query("fed", JOIN)
            lhs_first = next(
                f for f in first.plan.fetches if f.export == "left_rel"
            )
            lhs_second = next(
                f for f in second.plan.fetches if f.export == "left_rel"
            )
            # run 1 planned from stale statistics (50 rows); run 2 blends
            # the measured 600 with weight 1/2
            assert lhs_first.est_rows == pytest.approx(50)
            assert lhs_second.est_rows == pytest.approx(325)
            store = system.processor("fed").runtime_stats
            assert store.observations > 0
            assert len(store) > 0

    def test_first_run_identical_to_non_adaptive(self):
        # Before anything is learned, the blend is a no-op: the first
        # execution accounts identically with feedback on and off.
        with build_skewed_join(adaptive_feedback=True) as adaptive:
            on = adaptive.query("fed", JOIN)
        with build_skewed_join() as plain:
            off = plain.query("fed", JOIN)
        assert on.elapsed_s == off.elapsed_s
        assert on.bytes_shipped == off.bytes_shipped
        assert on.trace.message_count == off.trace.message_count
        assert sorted(on.rows) == sorted(off.rows)

    def test_feedback_event_emitted(self):
        with build_skewed_join(adaptive_feedback=True) as system:
            system.query("fed", JOIN)
            assert (
                system.metrics.counter_total("query.feedback_version_bumps")
                >= 1
            )
            assert system.events.of_type("query.feedback")


class TestMidQueryReplan:
    def test_overgrown_semijoin_source_drops_reduction(self):
        with build_skewed_join(adaptive_replan=True) as system:
            result = system.query("fed", JOIN)
        notes = "\n".join(result.plan.notes)
        assert "semijoin: reduce" in notes  # planned from stale stats
        assert "replan@stage0: drop semijoin" in notes
        assert any(
            getattr(f, "replanned", False) for f in result.plan.fetches
        )
        assert "(replanned)" in result.explain_analyze()
        assert system.metrics.counter_total("query.replans") == 1
        assert len(result.rows) == 600

    def test_replan_event_carries_trigger(self):
        with build_skewed_join(adaptive_replan=True) as system:
            system.query("fed", JOIN)
            events = system.events.of_type("query.replan")
        assert len(events) == 1
        assert "divergence" in events[0].fields["trigger"]
        assert events[0].fields["changes"] == 1

    def test_replan_wins_simulated_cost(self):
        # Without re-planning, the stale plan ships 600 join keys to the
        # right site only to fetch every row anyway.
        with build_skewed_join(adaptive_replan=True) as system:
            adaptive = system.query("fed", JOIN)
        with build_skewed_join() as system:
            static = system.query("fed", JOIN)
        assert sorted(adaptive.rows) == sorted(static.rows)
        assert adaptive.bytes_shipped < static.bytes_shipped
        assert adaptive.elapsed_s < static.elapsed_s

    def test_no_trigger_means_no_replan(self):
        # Accurate statistics → actuals match estimates → the plan stands.
        with build_skewed_join(
            initial_left=3, final_left=3, adaptive_replan=True
        ) as system:
            result = system.query("fed", JOIN)
        assert "replan@" not in "\n".join(result.plan.notes)
        assert system.metrics.counter_total("query.replans") == 0

    def test_late_semijoin_added_on_shrunken_source(self):
        # The reverse mis-estimate: statistics say the left side is too
        # big for a semijoin to pay off, but it materialises tiny.  The
        # replanner grafts a reduction onto the still-pending fetch using
        # the exact key set already at the federation site.
        with build_skewed_join(
            initial_left=600, final_left=3, adaptive_replan=True
        ) as system:
            processor = system.processor("fed")
            plan = processor.plan(JOIN)
            lhs = next(f for f in plan.fetches if f.export == "left_rel")
            rhs = next(f for f in plan.fetches if f.export == "right_rel")
            assert rhs.semijoin is None  # not worth it per stale stats
            optimizer = processor.optimizers["cost"]
            notes = optimizer.replan(
                plan,
                executed={lhs.index: (3.0, 100.0)},
                key_count=lambda index, column: 3,
                stage=0,
            )
        assert len(notes) == 1 and "add semijoin" in notes[0]
        assert rhs.semijoin is not None
        assert rhs.semijoin.source_index == lhs.index
        assert rhs.replanned


class TestKnobsOff:
    def test_defaults_are_off(self):
        system = MyriadSystem()
        assert system.adaptive_feedback is False
        assert system.adaptive_replan is False
        gateway = system.add_postgres("s")
        gateway.dbms.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        gateway.export_table("t", "t")
        fed = system.create_federation("f")
        fed.define_relation("rel", "SELECT id FROM s.t")
        with system:
            processor = system.processor("f")
            assert processor.runtime_stats is None
            assert processor.adaptive_replan is False

    def test_bit_identical_accounting_when_off(self):
        # The E12/E15 guarantee: explicit knobs-off equals a system built
        # before adaptivity existed, message for message.
        runs = []
        for kwargs in (
            {},
            {"adaptive_feedback": False, "adaptive_replan": False},
        ):
            with build_skewed_join(**kwargs) as system:
                result = system.query("fed", JOIN)
                runs.append(
                    (
                        result.elapsed_s,
                        result.bytes_shipped,
                        result.trace.message_count,
                        sorted(result.rows),
                    )
                )
        assert runs[0] == runs[1]

    def test_replan_threshold_knob_propagates(self):
        with build_skewed_join(
            adaptive_replan=True, replan_threshold=10_000.0
        ) as system:
            # threshold too high to ever trigger: stale plan runs as-is
            result = system.query("fed", JOIN)
            assert (
                system.processor("fed").executor.replan_threshold == 10_000.0
            )
        assert "replan@" not in "\n".join(result.plan.notes)
