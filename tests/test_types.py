"""Value/type-system tests: coercions, NULL handling, 3VL."""

import datetime
from decimal import Decimal

import pytest

from repro.errors import SQLTypeError
from repro.storage.types import (
    BOOLEAN,
    DATE,
    DECIMAL,
    FLOAT,
    INTEGER,
    TIMESTAMP,
    VARCHAR,
    DataType,
    TypeKind,
    infer_type,
    null_first_key,
    tv_and,
    tv_not,
    tv_or,
)


class TestTypeResolution:
    @pytest.mark.parametrize(
        "name,kind",
        [
            ("INT", TypeKind.INTEGER),
            ("integer", TypeKind.INTEGER),
            ("SMALLINT", TypeKind.INTEGER),
            ("FLOAT", TypeKind.FLOAT),
            ("DOUBLE", TypeKind.FLOAT),
            ("NUMBER", TypeKind.DECIMAL),
            ("NUMERIC", TypeKind.DECIMAL),
            ("VARCHAR", TypeKind.VARCHAR),
            ("VARCHAR2", TypeKind.VARCHAR),
            ("TEXT", TypeKind.VARCHAR),
            ("BOOLEAN", TypeKind.BOOLEAN),
            ("DATE", TypeKind.DATE),
            ("TIMESTAMP", TypeKind.TIMESTAMP),
        ],
    )
    def test_aliases(self, name, kind):
        assert DataType.from_name(name).kind is kind

    def test_embedded_params(self):
        dt = DataType.from_name("VARCHAR(40)")
        assert dt.params == (40,)
        assert dt.name == "VARCHAR(40)"

    def test_two_params(self):
        assert DataType.from_name("NUMBER(10,2)").params == (10, 2)

    def test_unknown_type(self):
        with pytest.raises(SQLTypeError):
            DataType.from_name("BLOB9")

    def test_bad_params(self):
        with pytest.raises(SQLTypeError):
            DataType.from_name("VARCHAR(x)")


class TestCoercion:
    def test_null_always_valid(self):
        for dt in (INTEGER, FLOAT, VARCHAR, BOOLEAN, DATE, TIMESTAMP, DECIMAL):
            assert dt.validate(None) is None

    def test_integer(self):
        assert INTEGER.validate(5) == 5
        assert INTEGER.validate(5.0) == 5
        assert INTEGER.validate("7") == 7
        assert INTEGER.validate(True) == 1

    def test_integer_rejects_fraction(self):
        with pytest.raises(SQLTypeError):
            INTEGER.validate(5.5)

    def test_integer_rejects_garbage(self):
        with pytest.raises(SQLTypeError):
            INTEGER.validate("five")

    def test_float(self):
        assert FLOAT.validate(3) == 3.0
        assert isinstance(FLOAT.validate(3), float)
        assert FLOAT.validate("2.5") == 2.5

    def test_decimal(self):
        assert DECIMAL.validate(1.5) == Decimal("1.5")
        assert DECIMAL.validate("2.25") == Decimal("2.25")

    def test_varchar(self):
        assert VARCHAR.validate(5) == "5"
        assert VARCHAR.validate("x") == "x"

    def test_varchar_length_enforced(self):
        dt = DataType.from_name("VARCHAR(3)")
        assert dt.validate("abc") == "abc"
        with pytest.raises(SQLTypeError):
            dt.validate("abcd")

    def test_boolean(self):
        assert BOOLEAN.validate("true") is True
        assert BOOLEAN.validate(0) is False
        assert BOOLEAN.validate("N") is False
        with pytest.raises(SQLTypeError):
            BOOLEAN.validate("maybe")

    def test_date(self):
        assert DATE.validate("2020-03-01") == datetime.date(2020, 3, 1)
        assert DATE.validate(datetime.datetime(2020, 3, 1, 5)) == datetime.date(
            2020, 3, 1
        )
        with pytest.raises(SQLTypeError):
            DATE.validate("03/01/2020")

    def test_timestamp(self):
        ts = TIMESTAMP.validate("2020-03-01 10:30:00")
        assert ts == datetime.datetime(2020, 3, 1, 10, 30)
        assert TIMESTAMP.validate(datetime.date(2020, 3, 1)).hour == 0

    def test_is_numeric(self):
        assert INTEGER.is_numeric() and FLOAT.is_numeric() and DECIMAL.is_numeric()
        assert not VARCHAR.is_numeric()


class TestInference:
    def test_infer(self):
        assert infer_type(True).kind is TypeKind.BOOLEAN
        assert infer_type(1).kind is TypeKind.INTEGER
        assert infer_type(1.5).kind is TypeKind.FLOAT
        assert infer_type("x").kind is TypeKind.VARCHAR
        assert infer_type(datetime.date.today()).kind is TypeKind.DATE
        assert infer_type(datetime.datetime.now()).kind is TypeKind.TIMESTAMP

    def test_infer_unknown(self):
        with pytest.raises(SQLTypeError):
            infer_type(object())


class TestThreeValuedLogic:
    TRUTHS = [True, False, None]

    def test_and_truth_table(self):
        assert tv_and(True, True) is True
        assert tv_and(True, False) is False
        assert tv_and(False, None) is False
        assert tv_and(None, False) is False
        assert tv_and(True, None) is None
        assert tv_and(None, None) is None

    def test_or_truth_table(self):
        assert tv_or(False, False) is False
        assert tv_or(True, None) is True
        assert tv_or(None, True) is True
        assert tv_or(False, None) is None
        assert tv_or(None, None) is None

    def test_not(self):
        assert tv_not(True) is False
        assert tv_not(False) is True
        assert tv_not(None) is None

    def test_de_morgan(self):
        for a in self.TRUTHS:
            for b in self.TRUTHS:
                assert tv_not(tv_and(a, b)) == tv_or(tv_not(a), tv_not(b))
                assert tv_not(tv_or(a, b)) == tv_and(tv_not(a), tv_not(b))

    def test_commutativity(self):
        for a in self.TRUTHS:
            for b in self.TRUTHS:
                assert tv_and(a, b) == tv_and(b, a)
                assert tv_or(a, b) == tv_or(b, a)


class TestSortKeys:
    def test_nulls_first(self):
        values = [3, None, 1, None, 2]
        ordered = sorted(values, key=null_first_key)
        assert ordered[:2] == [None, None]
        assert ordered[2:] == [1, 2, 3]

    def test_mixed_numeric(self):
        values = [Decimal("2.5"), 1, 3.5]
        assert sorted(values, key=null_first_key) == [1, Decimal("2.5"), 3.5]
